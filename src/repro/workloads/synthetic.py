"""Vectorized access-pattern building blocks.

Workload trace generators compose these primitives.  Every function
returns an ``int64`` array of virtual byte addresses (and, where useful,
a write mask).  Regions are laid out by the caller via ``base`` offsets;
generators keep each logical data structure (graph CSR arrays, AES
tables, item heaps, file caches...) in its own region so working sets
and locality are explicit.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sim.trace import Trace


def sequential(base: int, length_bytes: int, stride: int = 8, n: Optional[int] = None) -> np.ndarray:
    """A linear sweep over ``[base, base + length_bytes)``."""
    addrs = np.arange(0, length_bytes, stride, dtype=np.int64)
    if n is not None:
        if n <= len(addrs):
            addrs = addrs[:n]
        else:
            reps = -(-n // len(addrs))
            addrs = np.tile(addrs, reps)[:n]
    return base + addrs


def uniform_random(
    rng: np.random.Generator, base: int, region_bytes: int, n, granule: int = 8
) -> np.ndarray:
    """Uniformly random accesses across a region (no locality).

    ``n`` may be a shape tuple — batched generators draw one
    ``(interactions, accesses)`` matrix in a single call.
    """
    slots = max(1, region_bytes // granule)
    return base + rng.integers(0, slots, size=n, dtype=np.int64) * granule


def zipf(
    rng: np.random.Generator,
    base: int,
    n_items: int,
    item_bytes: int,
    n,
    alpha: float = 1.1,
) -> np.ndarray:
    """Zipf-distributed item accesses (hot-set reuse, long cold tail).

    ``n`` may be a shape tuple (see :func:`uniform_random`).
    """
    if n_items < 1:
        raise ValueError("need at least one item")
    ranks = rng.zipf(alpha, size=n)
    items = np.minimum(ranks - 1, n_items - 1).astype(np.int64)
    offsets = rng.integers(0, max(1, item_bytes // 8), size=n, dtype=np.int64) * 8
    return base + items * item_bytes + offsets


def hot_cold(
    rng: np.random.Generator,
    hot_base: int,
    hot_bytes: int,
    cold_base: int,
    cold_bytes: int,
    n: int,
    hot_fraction: float = 0.8,
) -> np.ndarray:
    """Mix of a small reused hot set and a large cold region."""
    is_hot = rng.random(n) < hot_fraction
    n_hot = int(is_hot.sum())
    addrs = np.empty(n, dtype=np.int64)
    addrs[is_hot] = uniform_random(rng, hot_base, hot_bytes, n_hot)
    addrs[~is_hot] = uniform_random(rng, cold_base, cold_bytes, n - n_hot)
    return addrs


def segmented_sequential(
    rng: np.random.Generator,
    base: int,
    region_bytes: int,
    n: int,
    segment_bytes: int = 512,
    stride: int = 8,
) -> np.ndarray:
    """Short sequential runs at random positions (adjacency-list scans).

    Models CSR neighbour walks and record scans: pick a random start in
    the region, stream ``segment_bytes`` sequentially, repeat.
    """
    per_seg = max(1, segment_bytes // stride)
    n_segs = -(-n // per_seg)
    slots = max(1, (region_bytes - segment_bytes) // 64)
    starts = rng.integers(0, slots, size=n_segs, dtype=np.int64) * 64
    offsets = np.arange(per_seg, dtype=np.int64) * stride
    addrs = (starts[:, None] + offsets[None, :]).reshape(-1)[:n]
    return base + addrs


def rotating_window(
    base: int,
    region_bytes: int,
    index: int,
    window_bytes: int,
    n: int,
    stride: int = 64,
) -> np.ndarray:
    """Sequential sweep over the ``index``-th window of a large region.

    Single-pass workloads (triangle counting's one-shot traversal,
    layer-wise weight streaming) touch a different slab each interaction;
    the steady-state footprint is the whole region while per-interaction
    traces stay short.
    """
    n_windows = max(1, region_bytes // window_bytes)
    start = (index % n_windows) * window_bytes
    addrs = start + (np.arange(n, dtype=np.int64) * stride) % window_bytes
    return base + addrs


def strided(base: int, n: int, stride: int, window_bytes: int) -> np.ndarray:
    """A strided sweep wrapping inside a window (stencil row walks)."""
    return base + (np.arange(n, dtype=np.int64) * stride) % max(stride, window_bytes)


def pointer_chase(
    rng: np.random.Generator, base: int, ws_bytes: int, n: int, node_bytes: int = 64
) -> np.ndarray:
    """A dependent random walk over a working set (linked structures)."""
    slots = max(2, ws_bytes // node_bytes)
    perm = rng.permutation(slots)
    steps = np.empty(n, dtype=np.int64)
    pos = 0
    # The permutation cycle gives a deterministic dependent chain.
    idx = perm[np.arange(n) % slots]
    steps[:] = idx
    return base + steps * node_bytes


def interleave(*streams: np.ndarray) -> np.ndarray:
    """Round-robin interleave several address streams."""
    streams = [s for s in streams if len(s)]
    if not streams:
        return np.empty(0, dtype=np.int64)
    if len(streams) == 1:
        return streams[0]
    n = sum(len(s) for s in streams)
    out = np.empty(n, dtype=np.int64)
    k = len(streams)
    longest = max(len(s) for s in streams)
    pos = 0
    chunks = []
    cursors = [0] * k
    # Interleave in small blocks to mimic pipelined phases while keeping
    # per-stream spatial locality runs intact.
    block = 16
    while pos < n:
        for i, s in enumerate(streams):
            c = cursors[i]
            if c >= len(s):
                continue
            take = min(block, len(s) - c)
            out[pos : pos + take] = s[c : c + take]
            cursors[i] = c + take
            pos += take
    return out


def interleave_pattern(lengths) -> np.ndarray:
    """Index pattern :func:`interleave` produces for the given lengths.

    Batched trace generators build every interaction's sub-streams as
    rows of ``(count, len)`` matrices; because the per-interaction
    stream lengths are constant, the interleave order is one fixed
    permutation of column indices.  Computing it once and applying it
    with a single fancy-index replaces the per-interaction Python loop.
    """
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]]).astype(np.int64)
    streams = [
        np.arange(length, dtype=np.int64) + off
        for length, off in zip(lengths, offsets)
    ]
    return interleave(*streams)


def write_mask(rng: np.random.Generator, n, write_fraction: float) -> np.ndarray:
    """Random store flags at the requested density (``n`` may be a shape)."""
    if write_fraction <= 0:
        return np.zeros(n, dtype=np.int8)
    if write_fraction >= 1:
        return np.ones(n, dtype=np.int8)
    return (rng.random(n) < write_fraction).astype(np.int8)


def make_trace(
    addrs: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    write_fraction: float = 0.0,
    writes: Optional[np.ndarray] = None,
    instr_per_access: float = 4.0,
) -> Trace:
    """Bundle an address stream into a :class:`Trace`."""
    if writes is None and write_fraction > 0.0:
        if rng is None:
            raise ValueError("write_fraction needs an rng")
        writes = write_mask(rng, len(addrs), write_fraction)
    return Trace(addrs, writes, instr_per_access)


# Region layout helper ---------------------------------------------------

MB = 1024 * 1024


class RegionLayout:
    """Assigns non-overlapping virtual regions to named structures."""

    def __init__(self, alignment: int = 1 << 20):
        self.alignment = alignment
        self._next = 0
        self._regions: dict = {}

    def add(self, name: str, size_bytes: int) -> int:
        """Reserve a region; returns its base address."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already defined")
        base = self._next
        aligned = -(-size_bytes // self.alignment) * self.alignment
        self._next += aligned
        self._regions[name] = (base, size_bytes)
        return base

    def base(self, name: str) -> int:
        return self._regions[name][0]

    def size(self, name: str) -> int:
        return self._regions[name][1]

    @property
    def total_bytes(self) -> int:
        return self._next
