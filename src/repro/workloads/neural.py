"""Secure perception networks: ALEXNET and SqueezeNet.

Real forward-pass building blocks (conv2d, max-pool, ReLU, fire module)
back the examples and tests; the trace generators model inference as the
paper's evaluation sees it — per-frame streaming over large weight
regions (rotating layer slabs), hot activation buffers, and gather-style
im2col reads.  ALEXNET carries much heavier weights than SqueezeNet
(whose fire modules squeeze parameters), which is what gives the two
different shared-cache appetites and cluster allocations.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.model.speedup import ScalabilityProfile
from repro.sim.trace import Trace
from repro.workloads import synthetic as syn
from repro.workloads.base import ProcessProfile, WorkloadProcess

KB = 1024
MB = 1024 * KB


# ---------------------------------------------------------------------------
# Real layers
# ---------------------------------------------------------------------------


def conv2d(x: np.ndarray, w: np.ndarray, stride: int = 1) -> np.ndarray:
    """Valid convolution: x [C,H,W], w [K,C,R,S] -> [K,H',W']."""
    c, h, wd = x.shape
    k, cw, r, s = w.shape
    if cw != c:
        raise ValueError("channel mismatch")
    ho = (h - r) // stride + 1
    wo = (wd - s) // stride + 1
    out = np.zeros((k, ho, wo), dtype=np.float32)
    for i in range(r):
        for j in range(s):
            patch = x[:, i : i + stride * ho : stride, j : j + stride * wo : stride]
            out += np.einsum("chw,kc->khw", patch, w[:, :, i, j])
    return out


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def max_pool(x: np.ndarray, size: int = 2) -> np.ndarray:
    """Non-overlapping max pooling over [C,H,W]."""
    c, h, w = x.shape
    h2, w2 = h // size, w // size
    return x[:, : h2 * size, : w2 * size].reshape(c, h2, size, w2, size).max(axis=(2, 4))


def fire_module(
    x: np.ndarray, squeeze_w: np.ndarray, expand1_w: np.ndarray, expand3_w: np.ndarray
) -> np.ndarray:
    """SqueezeNet fire module: squeeze 1x1 then expand 1x1 + 3x3."""
    squeezed = relu(conv2d(x, squeeze_w))
    e1 = relu(conv2d(squeezed, expand1_w))
    padded = np.pad(squeezed, ((0, 0), (1, 1), (1, 1)))
    e3 = relu(conv2d(padded, expand3_w))
    return np.concatenate([e1, e3], axis=0)


def tiny_alexnet_forward(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """A miniature AlexNet-shaped forward pass (tests and examples)."""
    w1 = rng.standard_normal((8, x.shape[0], 5, 5)).astype(np.float32) * 0.1
    h1 = max_pool(relu(conv2d(x, w1, stride=2)))
    w2 = rng.standard_normal((16, 8, 3, 3)).astype(np.float32) * 0.1
    h2 = max_pool(relu(conv2d(h1, w2)))
    flat = h2.reshape(-1)
    wfc = rng.standard_normal((10, flat.shape[0])).astype(np.float32) * 0.01
    return wfc @ flat


# ---------------------------------------------------------------------------
# Trace models
# ---------------------------------------------------------------------------


class _ConvNetProcess(WorkloadProcess):
    """Shared shape of the two perception networks."""

    def __init__(
        self,
        name: str,
        code: bytes,
        weight_bytes: int,
        act_bytes: int,
        accesses: int,
        scalability: ScalabilityProfile,
        instr_per_access: float,
    ):
        self.layout = syn.RegionLayout()
        self.weights = self.layout.add("weights", weight_bytes)
        self.acts = self.layout.add("acts", act_bytes)
        self.im2col = self.layout.add("im2col", 32 * KB)
        self.accesses = accesses
        self.ipa = instr_per_access
        self.profile = ProcessProfile(
            name, "secure", scalability, code,
            l2_appetite_bytes=weight_bytes + act_bytes, capacity_beta=0.85,
        )

    def interaction_trace(self, rng: np.random.Generator, index: int) -> Trace:
        n = self.accesses
        lay = self.layout
        # One inference streams a rotating slab of the weights twice
        # (forward accumulation + the transposed reuse of im2col tiles):
        # the second pass re-hits the L2, which the baseline's replicas
        # serve locally while partitioned machines pay the full path.
        half = int(n * 0.225)
        w_pass1 = syn.rotating_window(
            self.weights, lay.size("weights"), index, 128 * KB, half, stride=64
        )
        w_pass2 = syn.rotating_window(
            self.weights, lay.size("weights"), index, 128 * KB, half, stride=64
        )
        weights = syn.interleave(w_pass1, w_pass2)
        # ... re-reads hot activations, and gathers im2col patches.
        acts = syn.hot_cold(
            rng, self.acts, 16 * KB, self.acts, lay.size("acts"), int(n * 0.35), 0.7
        )
        gathers = syn.uniform_random(rng, self.im2col, lay.size("im2col"), n - int(n * 0.80))
        addrs = syn.interleave(weights, acts, gathers)
        writes = syn.write_mask(rng, len(addrs), 0.20)
        return Trace(addrs, writes, instr_per_access=self.ipa)


class AlexNetProcess(_ConvNetProcess):
    """Secure ALEXNET perception (heavy weights, big L2 appetite)."""

    def __init__(self, accesses: int = 3600):
        super().__init__(
            "ALEXNET",
            b"alexnet-code-v1",
            weight_bytes=3 * MB,
            act_bytes=256 * KB,
            accesses=accesses,
            scalability=ScalabilityProfile(0.07, 0.0015),
            instr_per_access=7.0,
        )


class SqueezeNetProcess(_ConvNetProcess):
    """Secure SqueezeNet (SQZ-NET): fewer parameters, more layers."""

    def __init__(self, accesses: int = 3200):
        super().__init__(
            "SQZ-NET",
            b"squeezenet-code-v1",
            weight_bytes=1536 * KB,
            act_bytes=384 * KB,
            accesses=accesses,
            scalability=ScalabilityProfile(0.09, 0.002),
            instr_per_access=6.0,
        )
