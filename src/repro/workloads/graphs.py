"""Road-network graphs and the real graph algorithms (CRONO-style).

The paper's real-time graph processing applications run SSSP, PageRank
and Triangle Counting over the California road network.  We do not ship
that dataset; :func:`RoadNetwork.california_like` synthesizes a planar
road-style graph with the same character — a near-lattice of low-degree
junctions with local shortcuts — which preserves what the evaluation
depends on: low average degree, large diameter, and CSR-layout locality.

The algorithms here are the *real* implementations (used by the examples
and as oracles for the trace generators); the machine models replay the
statistically matching generators from :mod:`repro.workloads.graph_procs`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class RoadNetwork:
    """A weighted directed graph in CSR form."""

    offsets: np.ndarray  # int64 [n+1]
    targets: np.ndarray  # int64 [m]
    weights: np.ndarray  # float64 [m]

    @property
    def n_nodes(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_edges(self) -> int:
        return len(self.targets)

    def neighbors(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        lo, hi = self.offsets[v], self.offsets[v + 1]
        return self.targets[lo:hi], self.weights[lo:hi]

    def degree(self, v: int) -> int:
        return int(self.offsets[v + 1] - self.offsets[v])

    @classmethod
    def california_like(
        cls, n_nodes: int = 4096, seed: int = 7, shortcut_fraction: float = 0.05
    ) -> "RoadNetwork":
        """A grid-of-junctions road network with sparse shortcuts.

        Nodes sit on a near-square lattice; each connects to its lattice
        neighbours (roads) and a few random nearby nodes (ramps), giving
        the low-degree, high-diameter structure of real road graphs.
        """
        rng = np.random.default_rng(seed)
        side = int(np.sqrt(n_nodes))
        n = side * side
        adjacency: List[List[Tuple[int, float]]] = [[] for _ in range(n)]

        def add(u: int, v: int) -> None:
            w = float(rng.uniform(1.0, 10.0))
            adjacency[u].append((v, w))
            adjacency[v].append((u, w))

        for r in range(side):
            for c in range(side):
                v = r * side + c
                if c + 1 < side:
                    add(v, v + 1)
                if r + 1 < side:
                    add(v, v + side)
        n_shortcuts = int(n * shortcut_fraction)
        for _ in range(n_shortcuts):
            u = int(rng.integers(0, n))
            # nearby shortcut: jump within a local window
            dr = int(rng.integers(-3, 4))
            dc = int(rng.integers(-3, 4))
            r, c = divmod(u, side)
            r2 = min(side - 1, max(0, r + dr))
            c2 = min(side - 1, max(0, c + dc))
            v = r2 * side + c2
            if u != v:
                add(u, v)

        offsets = np.zeros(n + 1, dtype=np.int64)
        for v in range(n):
            offsets[v + 1] = offsets[v] + len(adjacency[v])
        targets = np.empty(offsets[-1], dtype=np.int64)
        weights = np.empty(offsets[-1], dtype=np.float64)
        for v in range(n):
            lo = offsets[v]
            for i, (t, w) in enumerate(adjacency[v]):
                targets[lo + i] = t
                weights[lo + i] = w
        return cls(offsets, targets, weights)

    def with_updated_weights(self, edge_ids: np.ndarray, new_weights: np.ndarray) -> None:
        """Apply a temporal update batch in place (GRAPH's output)."""
        self.weights[edge_ids] = new_weights


def sssp(graph: RoadNetwork, source: int = 0) -> np.ndarray:
    """Dijkstra single-source shortest paths; returns distances."""
    n = graph.n_nodes
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    offsets, targets, weights = graph.offsets, graph.targets, graph.weights
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        lo, hi = offsets[v], offsets[v + 1]
        for i in range(lo, hi):
            t = targets[i]
            nd = d + weights[i]
            if nd < dist[t]:
                dist[t] = nd
                heapq.heappush(heap, (nd, int(t)))
    return dist


def pagerank(
    graph: RoadNetwork, iterations: int = 20, damping: float = 0.85
) -> np.ndarray:
    """Power-iteration PageRank; returns the rank vector."""
    n = graph.n_nodes
    rank = np.full(n, 1.0 / n)
    out_degree = np.diff(graph.offsets).astype(np.float64)
    out_degree[out_degree == 0] = 1.0
    # Build the reverse gather index once (CSR is symmetric here).
    for _ in range(iterations):
        contrib = rank / out_degree
        new_rank = np.zeros(n)
        np.add.at(new_rank, graph.targets, np.repeat(contrib, np.diff(graph.offsets)))
        rank = (1.0 - damping) / n + damping * new_rank
    return rank


def triangle_count(graph: RoadNetwork) -> int:
    """Exact triangle count via sorted-adjacency intersection."""
    n = graph.n_nodes
    neighbor_sets = []
    for v in range(n):
        lo, hi = graph.offsets[v], graph.offsets[v + 1]
        neighbor_sets.append(set(int(t) for t in graph.targets[lo:hi] if int(t) > v))
    count = 0
    for v in range(n):
        sv = neighbor_sets[v]
        for u in sv:
            count += len(sv & neighbor_sets[u])
    return count


def generate_temporal_updates(
    graph: RoadNetwork, rng: np.random.Generator, batch: int = 64
) -> Tuple[np.ndarray, np.ndarray]:
    """GRAPH's real job: sensor-driven edge-weight deltas.

    Picks a batch of edges (traffic sensors) and nudges their weights,
    as in the IWCTS traffic-modeling generator the paper uses.
    """
    edge_ids = rng.integers(0, graph.n_edges, size=batch, dtype=np.int64)
    factor = rng.uniform(0.7, 1.5, size=batch)
    new_weights = np.clip(graph.weights[edge_ids] * factor, 0.5, 20.0)
    return edge_ids, new_weights
