"""The untrusted OS process serving the OS-level applications.

MEMCACHED and LIGHTTPD "require frequent support from an untrusted OS
process for generating and processing requests, such as fread, fcntl,
close, and writev" (§IV-B2).  Each interaction services one such syscall
batch: file-descriptor table lookups, page-cache chunk reads/writes and
socket-buffer copies — small footprints, which is exactly why purging
dominates these applications under MI6.

A functional mini syscall layer backs the examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.model.speedup import ScalabilityProfile
from repro.sim.trace import Trace
from repro.workloads import synthetic as syn
from repro.workloads.base import ProcessProfile, WorkloadProcess

KB = 1024
MB = 1024 * KB


@dataclass
class OpenFile:
    path: str
    offset: int = 0
    flags: int = 0


class MiniOs:
    """A tiny in-memory OS: file table + page cache + syscalls."""

    def __init__(self):
        self.files: Dict[str, bytearray] = {}
        self.fd_table: Dict[int, OpenFile] = {}
        self._next_fd = 3
        self.syscalls = 0

    def open(self, path: str) -> int:
        self.syscalls += 1
        self.files.setdefault(path, bytearray())
        fd = self._next_fd
        self._next_fd += 1
        self.fd_table[fd] = OpenFile(path)
        return fd

    def fread(self, fd: int, size: int) -> bytes:
        self.syscalls += 1
        handle = self.fd_table[fd]
        data = bytes(self.files[handle.path][handle.offset : handle.offset + size])
        handle.offset += len(data)
        return data

    def writev(self, fd: int, chunks: List[bytes]) -> int:
        self.syscalls += 1
        handle = self.fd_table[fd]
        total = 0
        buf = self.files[handle.path]
        for chunk in chunks:
            end = handle.offset + len(chunk)
            if end > len(buf):
                buf.extend(b"\x00" * (end - len(buf)))
            buf[handle.offset : end] = chunk
            handle.offset = end
            total += len(chunk)
        return total

    def fcntl(self, fd: int, flags: int) -> int:
        self.syscalls += 1
        handle = self.fd_table[fd]
        previous = handle.flags
        handle.flags = flags
        return previous

    def close(self, fd: int) -> None:
        self.syscalls += 1
        del self.fd_table[fd]


class OsProcess(WorkloadProcess):
    """Insecure OS servicing one syscall batch per interaction."""

    def __init__(self, accesses: int = 62):
        self.layout = syn.RegionLayout()
        self.fd_table = self.layout.add("fd_table", 8 * KB)
        self.page_cache = self.layout.add("page_cache", 2 * MB)
        self.sock_buf = self.layout.add("sock_buf", 16 * KB)
        self.kstate = self.layout.add("kstate", 8 * KB)
        self.accesses = accesses
        self.profile = ProcessProfile(
            "OS", "insecure", ScalabilityProfile(0.22, 0.03), b"os-proc-v1",
            l2_appetite_bytes=420 * KB, capacity_beta=0.30,
        )

    @staticmethod
    def _split(n: int):
        """Sub-stream lengths of one syscall batch's access pattern."""
        return int(n * 0.20), int(n * 0.40), int(n * 0.25), n - int(n * 0.85)

    def interaction_trace(self, rng: np.random.Generator, index: int) -> Trace:
        n = self.accesses
        lay = self.layout
        n_fd, n_cache, n_sock, n_kstate = self._split(n)
        fds = syn.uniform_random(rng, self.fd_table, lay.size("fd_table"), n_fd)
        chunk_base = int(rng.integers(0, lay.size("page_cache") // (4 * KB))) * 4 * KB
        cache = syn.sequential(self.page_cache + chunk_base, 4 * KB, 64, n_cache)
        sock = syn.sequential(self.sock_buf, lay.size("sock_buf"), 64, n_sock)
        kstate = syn.uniform_random(rng, self.kstate, lay.size("kstate"), n_kstate)
        addrs = syn.interleave(fds, cache, sock, kstate)
        writes = syn.write_mask(rng, len(addrs), 0.35)
        return Trace(addrs, writes, instr_per_access=3.0)

    def batch_traces(self, rng, start, count, scale=1.0):
        """Vectorized stream: every syscall batch in one NumPy pass."""
        n = self.scaled_accesses(scale)
        lay = self.layout
        n_fd, n_cache, n_sock, n_kstate = self._split(n)
        fds = syn.uniform_random(rng, self.fd_table, lay.size("fd_table"), (count, n_fd))
        chunk_base = rng.integers(
            0, lay.size("page_cache") // (4 * KB), size=count, dtype=np.int64
        ) * (4 * KB)
        cache = (
            self.page_cache
            + chunk_base[:, None]
            + syn.sequential(0, 4 * KB, 64, n_cache)[None, :]
        )
        sock = np.broadcast_to(
            syn.sequential(self.sock_buf, lay.size("sock_buf"), 64, n_sock),
            (count, n_sock),
        )
        kstate = syn.uniform_random(rng, self.kstate, lay.size("kstate"), (count, n_kstate))
        pattern = syn.interleave_pattern([n_fd, n_cache, n_sock, n_kstate])
        mat = np.concatenate([fds, cache, sock, kstate], axis=1)[:, pattern]
        writes = syn.write_mask(rng, (count, len(pattern)), 0.35)
        return [Trace(mat[k], writes[k], instr_per_access=3.0) for k in range(count)]
