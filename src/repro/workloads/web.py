"""LIGHTTPD: a real mini static-file server plus the secure-process model.

The web-server application fetches a million 20 KB pages over 100
concurrent connections.  Requests land on uniformly random files, so the
server shows almost no shared-cache locality — the paper consequently
gives the LIGHTTPD process a single L2 slice and lets the OS process use
the remaining cores, and IRONHIDE's L2 miss rate ends up slightly worse
than MI6's for this one application (Figure 7's called-out exception).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.model.speedup import ScalabilityProfile
from repro.sim.trace import Trace
from repro.workloads import synthetic as syn
from repro.workloads.base import ProcessProfile, WorkloadProcess

KB = 1024
MB = 1024 * KB


@dataclass
class HttpResponse:
    status: int
    headers: Dict[str, str]
    body: bytes


class MiniHttpd:
    """A static-file HTTP server over an in-memory document root."""

    def __init__(self, page_bytes: int = 20 * KB, n_pages: int = 256, seed: int = 3):
        rng = np.random.default_rng(seed)
        self.docroot: Dict[str, bytes] = {
            f"/page{idx:04d}.html": rng.integers(32, 127, size=page_bytes, dtype=np.uint8)
            .astype(np.uint8)
            .tobytes()
            for idx in range(n_pages)
        }
        self.requests_served = 0

    def handle(self, request_line: str) -> HttpResponse:
        """Parse ``GET <path> HTTP/1.1`` and serve from the docroot."""
        parts = request_line.split()
        if len(parts) != 3 or parts[0] != "GET" or not parts[2].startswith("HTTP/"):
            return HttpResponse(400, {"Content-Type": "text/plain"}, b"bad request")
        body = self.docroot.get(parts[1])
        self.requests_served += 1
        if body is None:
            return HttpResponse(404, {"Content-Type": "text/plain"}, b"not found")
        return HttpResponse(
            200,
            {"Content-Type": "text/html", "Content-Length": str(len(body))},
            body,
        )


def http_load_request(rng: np.random.Generator, n_pages: int = 256) -> str:
    """One http_load-style request: a uniformly random page."""
    return f"GET /page{int(rng.integers(0, n_pages)):04d}.html HTTP/1.1"


class HttpdProcess(WorkloadProcess):
    """Secure LIGHTTPD serving one (uniform-random) page per interaction."""

    def __init__(self, accesses: int = 150):
        self.layout = syn.RegionLayout()
        self.file_cache = self.layout.add("file_cache", 4 * MB)
        self.parse_state = self.layout.add("parse_state", 4 * KB)
        self.resp_buf = self.layout.add("resp_buf", 32 * KB)
        self.accesses = accesses
        self.profile = ProcessProfile(
            # Request handling is serial per connection; threads mostly
            # contend — the paper gives LIGHTTPD one slice/core.
            # Uniform-random requests: no reuse, no appetite (paper: 1 slice).
            "LIGHTTPD", "secure", ScalabilityProfile(0.55, 0.30), b"lighttpd-code-v1",
            l2_appetite_bytes=0, capacity_beta=0.0,
        )

    @staticmethod
    def _split(n: int):
        """Sub-stream lengths of one request's access pattern."""
        return int(n * 0.18), int(n * 0.62), n - int(n * 0.80)

    def interaction_trace(self, rng: np.random.Generator, index: int) -> Trace:
        n = self.accesses
        lay = self.layout
        n_parse, n_body, n_resp = self._split(n)
        parse = syn.sequential(self.parse_state, lay.size("parse_state"), 8, n_parse)
        # An 8 KB chunk of a uniformly random file: pure streaming.
        n_files = lay.size("file_cache") // (8 * KB)
        rank = min(int(rng.zipf(1.15)), n_files) - 1
        file_base = rank * 8 * KB
        body = syn.sequential(self.file_cache + file_base, 8 * KB, 64, n_body)
        resp = syn.sequential(self.resp_buf, lay.size("resp_buf"), 64, n_resp)
        addrs = syn.interleave(parse, body, resp)
        writes = syn.write_mask(rng, len(addrs), 0.15)
        return Trace(addrs, writes, instr_per_access=3.0)

    def batch_traces(self, rng, start, count, scale=1.0):
        """Vectorized stream: every request's accesses in one NumPy pass."""
        n = self.scaled_accesses(scale)
        lay = self.layout
        n_parse, n_body, n_resp = self._split(n)
        n_files = lay.size("file_cache") // (8 * KB)
        ranks = np.minimum(rng.zipf(1.15, size=count), n_files).astype(np.int64) - 1
        file_base = ranks * (8 * KB)
        body = (
            self.file_cache
            + file_base[:, None]
            + syn.sequential(0, 8 * KB, 64, n_body)[None, :]
        )
        parse = np.broadcast_to(
            syn.sequential(self.parse_state, lay.size("parse_state"), 8, n_parse),
            (count, n_parse),
        )
        resp = np.broadcast_to(
            syn.sequential(self.resp_buf, lay.size("resp_buf"), 64, n_resp),
            (count, n_resp),
        )
        pattern = syn.interleave_pattern([n_parse, n_body, n_resp])
        mat = np.concatenate([parse, body, resp], axis=1)[:, pattern]
        writes = syn.write_mask(rng, (count, len(pattern)), 0.15)
        return [Trace(mat[k], writes[k], instr_per_access=3.0) for k in range(count)]
