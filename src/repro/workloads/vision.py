"""The insecure VISION pipeline: RAW image processing kernels.

Real kernels (demosaic, Gaussian denoise, tone map — the stages of the
reconfigurable imaging pipeline the paper builds on) implemented over
numpy for the examples and tests, plus the trace-generating process the
machines replay: streaming stencil sweeps over the frame buffers with a
modest, mostly-sequential working set.
"""

from __future__ import annotations

import numpy as np

from repro.model.speedup import ScalabilityProfile
from repro.sim.trace import Trace
from repro.workloads import synthetic as syn
from repro.workloads.base import ProcessProfile, WorkloadProcess

KB = 1024


# ---------------------------------------------------------------------------
# Real kernels
# ---------------------------------------------------------------------------


def demosaic(raw: np.ndarray) -> np.ndarray:
    """Nearest-neighbour Bayer demosaic (RGGB) to a 3-channel image."""
    if raw.ndim != 2 or raw.shape[0] % 2 or raw.shape[1] % 2:
        raise ValueError("RAW frame must be 2-D with even dimensions")
    h, w = raw.shape
    rgb = np.empty((h, w, 3), dtype=np.float32)
    r = raw[0::2, 0::2]
    g1 = raw[0::2, 1::2]
    g2 = raw[1::2, 0::2]
    b = raw[1::2, 1::2]
    rgb[..., 0] = np.repeat(np.repeat(r, 2, axis=0), 2, axis=1)[:h, :w]
    g = (g1.astype(np.float32) + g2.astype(np.float32)) / 2.0
    rgb[..., 1] = np.repeat(np.repeat(g, 2, axis=0), 2, axis=1)[:h, :w]
    rgb[..., 2] = np.repeat(np.repeat(b, 2, axis=0), 2, axis=1)[:h, :w]
    return rgb


def gaussian_blur(img: np.ndarray, passes: int = 1) -> np.ndarray:
    """Separable 3-tap blur (1-2-1 kernel), repeated ``passes`` times."""
    out = img.astype(np.float32)
    for _ in range(passes):
        padded = np.pad(out, [(1, 1), (1, 1)] + [(0, 0)] * (out.ndim - 2), mode="edge")
        out = (
            2.0 * padded[1:-1, 1:-1]
            + padded[:-2, 1:-1]
            + padded[2:, 1:-1]
            + padded[1:-1, :-2]
            + padded[1:-1, 2:]
        ) / 6.0
    return out


def tone_map(img: np.ndarray, gamma: float = 2.2) -> np.ndarray:
    """Global gamma tone mapping into [0, 1]."""
    peak = float(img.max()) or 1.0
    return np.power(np.clip(img / peak, 0.0, 1.0), 1.0 / gamma)


def vision_pipeline(raw: np.ndarray) -> np.ndarray:
    """The full RAW -> display pipeline."""
    return tone_map(gaussian_blur(demosaic(raw)))


# ---------------------------------------------------------------------------
# Trace model
# ---------------------------------------------------------------------------


class VisionProcess(WorkloadProcess):
    """Insecure vision pipeline feeding frames to the secure consumers."""

    def __init__(self, accesses: int = 1800, frame_bytes: int = 512 * KB):
        self.layout = syn.RegionLayout()
        self.raw = self.layout.add("raw", frame_bytes)
        self.work = self.layout.add("work", frame_bytes)
        self.out = self.layout.add("out", frame_bytes)
        self.kernel_state = self.layout.add("kernel_state", 12 * KB)
        self.accesses = accesses
        self.profile = ProcessProfile(
            "VISION", "insecure", ScalabilityProfile(0.10, 0.006), b"vision-code-v1",
            l2_appetite_bytes=896 * KB, capacity_beta=0.20,
        )

    def interaction_trace(self, rng: np.random.Generator, index: int) -> Trace:
        n = self.accesses
        lay = self.layout
        # Each interaction processes one (rotating) stripe of the frame.
        stripe = 64 * KB
        sweep_in = syn.rotating_window(self.raw, lay.size("raw"), index, stripe, int(n * 0.40), stride=32)
        sweep_work = syn.rotating_window(self.work, lay.size("work"), index, stripe, int(n * 0.30), stride=32)
        state = syn.uniform_random(rng, self.kernel_state, lay.size("kernel_state"), int(n * 0.18))
        sweep_out = syn.rotating_window(self.out, lay.size("out"), index, stripe, n - int(n * 0.88), stride=32)
        addrs = syn.interleave(sweep_in, sweep_work, state, sweep_out)
        writes = syn.write_mask(rng, len(addrs), 0.30)
        return Trace(addrs, writes, instr_per_access=5.0)
