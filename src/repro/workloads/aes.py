"""AES-256: a complete implementation plus the secure-process model.

The query-encryption application encrypts database queries under a
256-bit key.  This module implements real AES-256 (key expansion,
SubBytes/ShiftRows/MixColumns rounds, ECB and CTR modes) — validated
against the FIPS-197 vectors in the test suite — and the matching trace
generator: a small, intensely reused working set (S-box tables, round
keys, block state) plus streaming query buffers.  That hot-table profile
is exactly what makes AES the worst case for MI6's per-interaction
purging: every crossing evicts tables that would otherwise live in L1
indefinitely.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.model.speedup import ScalabilityProfile
from repro.sim.trace import Trace
from repro.workloads import synthetic as syn
from repro.workloads.base import ProcessProfile, WorkloadProcess

KB = 1024

# ---------------------------------------------------------------------------
# Real AES-256
# ---------------------------------------------------------------------------

_SBOX: List[int] = []
_INV_SBOX: List[int] = []


def _initialize_sbox() -> None:
    """Build the S-box from GF(2^8) inversion + affine transform."""
    if _SBOX:
        return
    # Multiplicative inverses via exp/log tables over the AES field.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x ^= (x << 1) ^ (0x1B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    def inverse(b: int) -> int:
        return 0 if b == 0 else exp[255 - log[b]]

    for b in range(256):
        inv = inverse(b)
        s = inv
        for _ in range(4):
            inv = ((inv << 1) | (inv >> 7)) & 0xFF
            s ^= inv
        _SBOX.append(s ^ 0x63)
    inv_box = [0] * 256
    for i, s in enumerate(_SBOX):
        inv_box[s] = i
    _INV_SBOX.extend(inv_box)


_initialize_sbox()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8]


def _xtime(b: int) -> int:
    b <<= 1
    if b & 0x100:
        b ^= 0x11B
    return b & 0xFF


def _mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def expand_key(key: bytes) -> List[List[int]]:
    """AES-256 key schedule: 15 round keys of 16 bytes each."""
    if len(key) != 32:
        raise ValueError("AES-256 requires a 32-byte key")
    nk = 8
    nr = 14
    words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
    for i in range(nk, 4 * (nr + 1)):
        temp = list(words[i - 1])
        if i % nk == 0:
            temp = temp[1:] + temp[:1]
            temp = [_SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // nk - 1]
        elif i % nk == 4:
            temp = [_SBOX[b] for b in temp]
        words.append([w ^ t for w, t in zip(words[i - nk], temp)])
    return [sum(words[4 * r : 4 * r + 4], []) for r in range(nr + 1)]


def _sub_bytes(state: List[int]) -> None:
    for i in range(16):
        state[i] = _SBOX[state[i]]


def _shift_rows(state: List[int]) -> None:
    for r in range(1, 4):
        row = [state[r + 4 * c] for c in range(4)]
        row = row[r:] + row[:r]
        for c in range(4):
            state[r + 4 * c] = row[c]


def _mix_columns(state: List[int]) -> None:
    for c in range(4):
        col = state[4 * c : 4 * c + 4]
        state[4 * c + 0] = _mul(col[0], 2) ^ _mul(col[1], 3) ^ col[2] ^ col[3]
        state[4 * c + 1] = col[0] ^ _mul(col[1], 2) ^ _mul(col[2], 3) ^ col[3]
        state[4 * c + 2] = col[0] ^ col[1] ^ _mul(col[2], 2) ^ _mul(col[3], 3)
        state[4 * c + 3] = _mul(col[0], 3) ^ col[1] ^ col[2] ^ _mul(col[3], 2)


def _add_round_key(state: List[int], rk: List[int]) -> None:
    for i in range(16):
        state[i] ^= rk[i]


def encrypt_block(block: bytes, round_keys: List[List[int]]) -> bytes:
    """Encrypt one 16-byte block with pre-expanded AES-256 keys."""
    if len(block) != 16:
        raise ValueError("AES block must be 16 bytes")
    state = list(block)
    _add_round_key(state, round_keys[0])
    for rnd in range(1, 14):
        _sub_bytes(state)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_keys[rnd])
    _sub_bytes(state)
    _shift_rows(state)
    _add_round_key(state, round_keys[14])
    return bytes(state)


def encrypt_ecb(data: bytes, key: bytes) -> bytes:
    """ECB over zero-padded data (query payloads are records)."""
    round_keys = expand_key(key)
    if len(data) % 16:
        data = data + b"\x00" * (16 - len(data) % 16)
    return b"".join(
        encrypt_block(data[i : i + 16], round_keys) for i in range(0, len(data), 16)
    )


def encrypt_ctr(data: bytes, key: bytes, nonce: bytes) -> bytes:
    """CTR mode (the streaming mode a query pipeline would use)."""
    if len(nonce) != 8:
        raise ValueError("nonce must be 8 bytes")
    round_keys = expand_key(key)
    out = bytearray()
    for counter in range(-(-len(data) // 16)):
        block = nonce + counter.to_bytes(8, "big")
        stream = encrypt_block(block, round_keys)
        chunk = data[16 * counter : 16 * counter + 16]
        out.extend(b ^ s for b, s in zip(chunk, stream))
    return bytes(out)


# ---------------------------------------------------------------------------
# Secure-process trace model
# ---------------------------------------------------------------------------


class AesProcess(WorkloadProcess):
    """Secure AES-256 encryption of incoming queries."""

    def __init__(self, accesses: int = 1400, query_bytes: int = 2 * KB):
        self.layout = syn.RegionLayout()
        self.tables = self.layout.add("tables", 8 * KB)  # S-box + T-tables
        self.round_keys = self.layout.add("round_keys", 256)
        self.state = self.layout.add("state", 2 * KB)
        self.query_in = self.layout.add("query_in", 64 * KB)
        self.cipher_out = self.layout.add("cipher_out", 64 * KB)
        self.accesses = accesses
        self.query_bytes = query_bytes
        self.profile = ProcessProfile(
            "AES", "secure", ScalabilityProfile(0.10, 0.010), b"aes256-code-v1",
            l2_appetite_bytes=140 * KB, capacity_beta=0.70,
        )

    def interaction_trace(self, rng: np.random.Generator, index: int) -> Trace:
        n = self.accesses
        lay = self.layout
        # Table lookups dominate: 16 S-box reads per round per block.
        tables = syn.uniform_random(rng, self.tables, lay.size("tables"), int(n * 0.55))
        keys = syn.uniform_random(rng, self.round_keys, 240, int(n * 0.12))
        state = syn.uniform_random(rng, self.state, lay.size("state"), int(n * 0.13))
        qoff = (index * self.query_bytes) % lay.size("query_in")
        qin = syn.sequential(self.query_in + qoff, self.query_bytes, 4, int(n * 0.10))
        cout = syn.sequential(
            self.cipher_out + qoff, self.query_bytes, 4, n - int(n * 0.90)
        )
        addrs = syn.interleave(tables, keys, state, qin, cout)
        # Stores: the state region and the ciphertext output.
        wmask = np.zeros(len(addrs), dtype=np.int8)
        in_state = (addrs >= self.state) & (addrs < self.state + lay.size("state"))
        in_out = (addrs >= self.cipher_out) & (addrs < self.cipher_out + lay.size("cipher_out"))
        wmask[in_state] = (rng.random(int(in_state.sum())) < 0.5).astype(np.int8)
        wmask[in_out] = 1
        return Trace(addrs, wmask, instr_per_access=9.0)


class QueryGenProcess(WorkloadProcess):
    """Insecure YCSB-like query generator."""

    def __init__(self, accesses: int = 1200):
        self.layout = syn.RegionLayout()
        self.keyspace = self.layout.add("keyspace", 768 * KB)
        self.templates = self.layout.add("templates", 8 * KB)
        self.out = self.layout.add("out", 64 * KB)
        self.accesses = accesses
        self.profile = ProcessProfile(
            "QUERY", "insecure", ScalabilityProfile(0.10, 0.006), b"querygen-code-v1",
            l2_appetite_bytes=840 * KB, capacity_beta=0.50,
        )

    def interaction_trace(self, rng: np.random.Generator, index: int) -> Trace:
        n = self.accesses
        lay = self.layout
        keys = syn.zipf(rng, self.keyspace, lay.size("keyspace") // 64, 64, int(n * 0.40), alpha=1.2)
        tmpl = syn.sequential(self.templates, lay.size("templates"), 8, int(n * 0.30))
        out = syn.sequential(
            self.out + (index * 4 * KB) % lay.size("out"), 4 * KB, 8, n - int(n * 0.70)
        )
        addrs = syn.interleave(keys, tmpl, out)
        writes = syn.write_mask(rng, len(addrs), 0.25)
        return Trace(addrs, writes, instr_per_access=3.5)
