"""Analytic performance model backing the core re-allocation predictor."""

from repro.model.perf_model import (
    PerfModel,
    ProcessCalibration,
    calibrate_l2_curve,
    calibration_from_probes,
)
from repro.model.speedup import ScalabilityProfile

__all__ = [
    "PerfModel",
    "ProcessCalibration",
    "calibrate_l2_curve",
    "calibration_from_probes",
    "ScalabilityProfile",
]
