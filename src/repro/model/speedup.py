"""Parallel scalability profiles for workload processes.

Interactive-application processes differ sharply in how they use cores:
GRAPH generation is embarrassingly parallel, while triangle counting
"incurs significant thread synchronization overheads, thus it is
allocated a small number of cores" (§V-C).  The profile combines an
Amdahl term with a synchronization overhead that grows with thread
count:

    time_factor(n) = (serial + (1 - serial) / n) * (1 + sync * (n - 1))

A process launched with more threads than its sweet spot gets *slower*;
machines therefore run each process at its preferred thread count within
the cores it was allocated (``best_factor``), which is also what makes
the core re-allocation predictor's trade-off real: cores beyond the
sweet spot only help through the L2 slices they bring along.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache


@dataclass(frozen=True)
class ScalabilityProfile:
    """Amdahl + synchronization model of one process's parallelism."""

    serial_fraction: float = 0.05
    sync_coeff: float = 0.002

    def __post_init__(self) -> None:
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError("serial_fraction must be within [0, 1]")
        if self.sync_coeff < 0.0:
            raise ValueError("sync_coeff must be non-negative")

    def time_factor(self, n_threads: int) -> float:
        """Execution-time multiplier relative to one thread."""
        if n_threads < 1:
            raise ValueError("thread count must be >= 1")
        s = self.serial_fraction
        amdahl = s + (1.0 - s) / n_threads
        return amdahl * (1.0 + self.sync_coeff * (n_threads - 1))

    @lru_cache(maxsize=512)
    def best_factor(self, max_threads: int) -> tuple:
        """(thread count, factor) minimizing time within ``max_threads``."""
        best_n = 1
        best_f = self.time_factor(1)
        for n in range(2, max_threads + 1):
            f = self.time_factor(n)
            if f < best_f:
                best_n, best_f = n, f
        return best_n, best_f

    def preferred_threads(self, max_threads: int) -> int:
        return self.best_factor(max_threads)[0]

    def speedup(self, n_threads: int) -> float:
        return 1.0 / self.time_factor(n_threads)
