"""Analytic completion-time model used by the cluster-size search.

The secure kernel cannot run full simulations to pick a core binding; it
uses this closed-form model instead, fed by a short calibration of each
process (§III-B4's "heuristic for cluster reconfiguration").  For a
process allocated ``n_cores`` whose cluster carries ``n_slices`` L2
slices and ``n_mcs`` controllers, the per-interaction time is

    T = (instr_cycles + l2_hit_cycles + misses(n_slices) * dram_penalty)
        * best_factor(n_cores)  +  MC queueing

``misses(n_slices)`` comes from a measured capacity curve: the process's
calibration trace replayed against scratch hierarchies with different
slice counts, log-interpolated in between.  The same expressions drive
the machine timing model, so the predictor optimizes the quantity the
simulator will actually report.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.arch.address import VirtualMemory
from repro.arch.hierarchy import MemoryHierarchy, ProcessContext, TraceResult
from repro.config import SystemConfig
from repro.model.speedup import ScalabilityProfile
from repro.sim.trace import Trace


#: Scratch L2 pools for :func:`calibrate_l2_curve_batched`, keyed by
#: backend class and L2 geometry; bounded LRU (pools hold full slice
#: states, so config sweeps must not accumulate one pool per geometry
#: forever).  :func:`clear_probe_pools` drops them all — wired into
#: ``runner.clear_result_cache`` alongside the result-store layers.
_PROBE_POOL_GEOMETRIES = 4
_PROBE_L2_POOLS: "OrderedDict" = OrderedDict()


def clear_probe_pools() -> None:
    """Drop every pooled calibration scratch cache (tests, sweeps)."""
    # Explicit invalidation of a per-process scratch pool (see below).
    _PROBE_L2_POOLS.clear()  # repro: allow[mp.global-write]


def calibrate_l2_curve(
    config: SystemConfig,
    warm_trace: Trace,
    measure_trace: Trace,
    slice_counts: Sequence[int],
):
    """Probe steady-state L2 behaviour at several slice allocations.

    Each probe warms a scratch hierarchy (restricted to ``k`` slices)
    with one window of interactions and measures a *different* window.
    Measuring fresh interactions is essential: replaying the identical
    trace would make single-pass workloads (triangle counting, streaming
    servers) look fully cache-reusable and mislead the predictor into
    hoarding slices for them.  Returns ``{k: TraceResult}``.

    Under the scalar engine each probe replays through its own scratch
    hierarchy (the reference oracle, :func:`calibrate_l2_curve_oracle`).
    Under the vector engine the whole curve is planned once: the
    translation, TLB and private-L1 behaviour of the probe traces is
    independent of the slice count, so one shared pass computes the L1
    miss stream and every probe point replays only its own L2 state
    (:func:`calibrate_l2_curve_batched`).  Both paths are bit-identical
    per probe — enforced by ``tests/test_replay_equivalence.py``.
    """
    if config.replay_engine == "vector":
        return calibrate_l2_curve_batched(
            config, warm_trace, measure_trace, slice_counts
        )
    return calibrate_l2_curve_oracle(config, warm_trace, measure_trace, slice_counts)


def calibrate_l2_curve_oracle(
    config: SystemConfig,
    warm_trace: Trace,
    measure_trace: Trace,
    slice_counts: Sequence[int],
):
    """Reference implementation: one fresh scratch replay per probe."""
    results = {}
    for k in slice_counts:
        hier = MemoryHierarchy(config)
        vm = VirtualMemory("probe", hier.address_space, list(range(config.mem.n_regions)))
        ctx = ProcessContext(
            "probe",
            "insecure",
            vm,
            cores=[0],
            slices=list(range(k)),
            controllers=list(range(config.mem.n_controllers)),
            homing="local",
            enforce=False,
        )
        hier.run_trace(ctx, warm_trace.addrs, warm_trace.writes)
        results[k] = hier.run_trace(ctx, measure_trace.addrs, measure_trace.writes)
    return results


def calibrate_l2_curve_batched(
    config: SystemConfig,
    warm_trace: Trace,
    measure_trace: Trace,
    slice_counts: Sequence[int],
):
    """Plan the probe curve once; replay only the L2 per probe point.

    Exactly reproduces, probe for probe, what
    :func:`calibrate_l2_curve_oracle` computes: a probe's fresh
    hierarchy and page table see the same call sequence — warm window
    then measure window — so frame allocation, run-length compression,
    TLB behaviour and the private-L1 miss stream are *identical across
    probes* (they never depend on the L2 slice count).  Only the
    home assignment (round-robin over ``k`` slices, in first-touch
    order) and the per-slice L2 replay differ, so those are the only
    parts executed per probe.  Requires the vector replay engine.
    """
    hier = MemoryHierarchy(config)
    if hier.engine != "vector":
        raise ValueError("batched calibration requires the vector replay engine")
    cfg = config
    vm = VirtualMemory("probe", hier.address_space, list(range(cfg.mem.n_regions)))
    tlb = hier.tlb_for(0)
    l1 = hier.l1_for(0)

    # Shared pass: per window (warm, then measure) — run-length
    # compression, translation and the L1/TLB replay, mirroring one
    # ``run_trace`` call each.
    segs = []
    for trace in (warm_trace, measure_trace):
        addrs = trace.addrs
        n = len(addrs)
        seg = {"n": n}
        segs.append(seg)
        if n == 0:
            # run_trace returns an empty result without touching
            # translation or cache state; mirror that.
            continue
        writes = trace.writes
        if writes is None:
            writes = np.zeros(n, dtype=np.int8)
        else:
            writes = writes.astype(np.int8, copy=False)
        vlines = addrs >> hier._line_shift
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.not_equal(vlines[1:], vlines[:-1], out=change[1:])
        idx = np.flatnonzero(change)
        ev_vlines = vlines[idx]
        ev_writes = np.maximum.reduceat(writes, idx)
        ev_vpages = ev_vlines >> hier._lp_shift
        uniq_pages, inverse = np.unique(ev_vpages, return_inverse=True)
        frames_uniq = vm.ensure_mapped(uniq_pages)
        ev_frames = frames_uniq[inverse]
        ev_plines = ev_frames * hier._lines_per_page + (ev_vlines & hier._lp_mask)

        pchange = np.empty(len(ev_vpages), dtype=bool)
        pchange[0] = True
        np.not_equal(ev_vpages[1:], ev_vpages[:-1], out=pchange[1:])
        seg["tlb_misses"] = int(tlb.access_batch(ev_vpages[pchange]))

        snap = l1.stats.snapshot()
        miss_pos = np.asarray(
            l1.kernel_filter_misses(ev_plines, ev_writes), dtype=np.intp
        )
        seg["events"] = len(ev_plines)
        seg["compressed"] = n - len(ev_plines)
        seg["l1_misses"] = len(miss_pos)
        seg["l1_writebacks"] = l1.stats.delta(snap).writebacks
        seg["frames_uniq"] = frames_uniq
        seg["miss_lines"] = ev_plines[miss_pos]
        seg["miss_writes"] = ev_writes[miss_pos]
        seg["miss_frames"] = ev_frames[miss_pos]
        seg["miss_mcs"] = hier._mc_of_region[
            seg["miss_frames"] // hier._frames_per_region
        ]

    # Home-assignment order: ensure_homed assigns round-robin in each
    # window's sorted-unique-page order, new frames only — identical
    # for every probe up to the slice count it wraps over.
    seen: set = set()
    alloc_order: List[int] = []
    for seg in segs:
        for f in seg.get("frames_uniq", np.empty(0, dtype=np.int64)).tolist():
            if f not in seen:
                seen.add(f)
                alloc_order.append(f)
    # Frame -> allocation rank via a sorted-side lookup (the frame
    # space is huge; a dense table would cost more than the probes).
    alloc_arr = np.asarray(alloc_order, dtype=np.int64)
    sort_idx = np.argsort(alloc_arr)
    sorted_frames = alloc_arr[sort_idx]
    for seg in segs:
        if "miss_frames" in seg:
            pos = np.searchsorted(sorted_frames, seg["miss_frames"])
            seg["miss_rank"] = sort_idx[pos]

    hop2 = 2 * (cfg.noc.hop_latency + cfg.noc.router_latency)
    l2_lat = cfg.l2_slice.hit_latency
    dram_lat = cfg.mem.dram_latency + cfg.mem.mc_service_latency
    walk = cfg.tlb.miss_walk_latency
    d_core = np.asarray(hier._avg_core_distances((0,)))
    mc_dist = hier.mesh.mc_distances

    results = {}
    # Probes reuse one pool of scratch L2 slices, flush-invalidated
    # between probe points: a flushed cache replays bit-identically to
    # a fresh one (empty ways fill before any eviction, and only the
    # relative order of the LRU stamps matters), and per-probe counters
    # come from per-window deltas, so the pool never leaks state or
    # counts across probes while saving one cache construction per
    # slice per probe point.  The pool is shared across curves of the
    # same backend and L2 geometry (module-level, keyed below) — every
    # curve starts by invalidating whatever the previous one left.  On
    # the native backend each window issues one multi-slice kernel call
    # over its home-sorted miss stream.
    pool_key = (
        hier._cache_cls.__name__,
        cfg.l2_slice.size_bytes,
        cfg.l2_slice.associativity,
        cfg.l2_slice.line_bytes,
    )
    # Per-process scratch pool: caches are reset before every probe, so
    # any process (parent or pool worker) computes identical curves
    # whether its pool is warm or cold.
    if pool_key in _PROBE_L2_POOLS:
        _PROBE_L2_POOLS.move_to_end(pool_key)  # repro: allow[mp.global-write]
    l2_caches = _PROBE_L2_POOLS.setdefault(pool_key, {})
    while len(_PROBE_L2_POOLS) > _PROBE_POOL_GEOMETRIES:
        _PROBE_L2_POOLS.popitem(last=False)
    native = hier.backend == "native"
    for k in slice_counts:
        for cache in l2_caches.values():
            if cache.valid_lines:
                cache.invalidate_all()
        measure_snaps: Dict[int, object] = {}
        l2_wb_measure = 0
        hitmask = None
        homes_m = mcs_m = None
        for si, seg in enumerate(segs):
            if "miss_lines" not in seg or not len(seg["miss_lines"]):
                continue
            homes = (seg["miss_rank"] % k).astype(np.int32)
            lines = seg["miss_lines"]
            writes = seg["miss_writes"]
            n_miss = len(lines)
            horder = np.argsort(homes, kind="stable")
            hs = homes[horder]
            bnd = np.empty(n_miss, dtype=bool)
            bnd[0] = True
            np.not_equal(hs[1:], hs[:-1], out=bnd[1:])
            bounds = np.flatnonzero(bnd).tolist()
            bounds.append(n_miss)
            if native:
                from repro.arch.native import multi_slice_flags_wb

                caches = []
                for a in bounds[:-1]:
                    home = int(hs[a])
                    cache = l2_caches.get(home)
                    if cache is None:
                        cache = l2_caches[home] = hier._cache_cls(
                            cfg.l2_slice, f"L2[{home}]"
                        )
                    caches.append(cache)
                hit_sorted, _, stats4 = multi_slice_flags_wb(
                    caches, bounds, lines[horder], writes[horder]
                )
                if si == 1:
                    # Per-part writebacks of the measure window sum to
                    # exactly what run_trace's per-slice stats deltas
                    # would report.
                    l2_wb_measure = int(stats4[1::4].sum())
            else:
                hit_sorted = np.empty(n_miss, dtype=np.int8)
                for a, b in zip(bounds[:-1], bounds[1:]):
                    home = int(hs[a])
                    cache = l2_caches.get(home)
                    if cache is None:
                        cache = hier._cache_cls(cfg.l2_slice, f"L2[{home}]")
                        l2_caches[home] = cache
                    if si == 1 and home not in measure_snaps:
                        measure_snaps[home] = cache.stats.snapshot()
                    part = horder[a:b]
                    hit_sorted[a:b] = cache.kernel_hit_flags(
                        lines[part], writes[part]
                    )
            if si == 1:
                l2_hit = np.empty(n_miss, dtype=np.int8)
                l2_hit[horder] = hit_sorted
                hitmask = l2_hit.astype(bool)
                homes_m = homes
                mcs_m = seg["miss_mcs"]

        meas = segs[1]
        result = TraceResult()
        result.accesses = meas["n"]
        if meas["n"] == 0:
            results[k] = result
            continue
        result.l1_misses = meas["l1_misses"]
        result.l1_hits = meas["compressed"] + meas["events"] - meas["l1_misses"]
        result.tlb_misses = meas["tlb_misses"]
        result.l1_writebacks = meas["l1_writebacks"]
        mem_cycles = float(walk * meas["tlb_misses"])
        mc_requests: Dict[int, int] = {}
        if hitmask is not None:
            base_cost = hop2 * d_core[homes_m] + l2_lat
            result.l2_hits = int(hitmask.sum())
            result.l2_misses = len(hitmask) - result.l2_hits
            mem_cycles += base_cost[hitmask].sum()
            if result.l2_misses:
                missmask = ~hitmask
                mm_mcs = mcs_m[missmask]
                miss_cost = (
                    base_cost[missmask]
                    + hop2 * mc_dist[homes_m[missmask], mm_mcs]
                    + dram_lat
                )
                mem_cycles += miss_cost.sum()
                mc_vals, mc_counts = np.unique(mm_mcs, return_counts=True)
                mc_requests = {
                    int(mc): int(cnt) for mc, cnt in zip(mc_vals, mc_counts)
                }
        result.mem_cycles = int(mem_cycles)
        result.mc_requests = mc_requests
        if native:
            result.l2_writebacks = l2_wb_measure
        else:
            result.l2_writebacks = sum(
                l2_caches[home].stats.delta(snap).writebacks
                for home, snap in measure_snaps.items()
            )
        results[k] = result
    return results


def calibration_from_probes(
    config: SystemConfig,
    name: str,
    trace: Trace,
    probes,
    scalability: ScalabilityProfile,
    interactions: int,
    appetite_bytes: int = 0,
    capacity_beta: float = 0.0,
) -> "ProcessCalibration":
    """Build a :class:`ProcessCalibration` from slice-capacity probes.

    ``probes`` is the output of :func:`calibrate_l2_curve`; ``trace``
    covers ``interactions`` interactions, so counters are normalized to
    per-interaction values.
    """
    k_max = max(probes)
    res = probes[k_max]
    avg_hops = (config.mesh_rows + config.mesh_cols) // 2
    hop = config.noc.hop_latency + config.noc.router_latency
    dram_penalty = config.mem.dram_latency + config.mem.mc_service_latency + 2 * avg_hops * hop
    denom = max(1, interactions)
    l2_hit_cycles = max(0.0, res.mem_cycles - res.l2_misses * dram_penalty) / denom
    return ProcessCalibration(
        name=name,
        instr_cycles=trace.instructions * config.core.base_cpi / denom,
        l1_misses=res.l1_misses / denom,
        l2_hit_cycles=l2_hit_cycles,
        dram_penalty=dram_penalty,
        l2_curve={k: r.l2_misses / denom for k, r in probes.items()},
        scalability=scalability,
        slice_bytes=config.l2_slice.size_bytes,
        probe_footprint_bytes=trace.footprint_bytes(config.line_bytes),
        appetite_bytes=appetite_bytes,
        capacity_beta=capacity_beta,
    )


@dataclass
class ProcessCalibration:
    """Per-interaction characteristics of one process."""

    name: str
    instr_cycles: float
    l1_misses: float
    l2_hit_cycles: float
    dram_penalty: float
    l2_curve: Dict[int, float]
    scalability: ScalabilityProfile
    slice_bytes: int = 64 * 1024
    probe_footprint_bytes: int = 0
    appetite_bytes: int = 0
    capacity_beta: float = 0.0

    def _interpolate_curve(self, n_slices: int) -> float:
        pts = sorted(self.l2_curve.items())
        if not pts:
            return 0.0
        if n_slices <= pts[0][0]:
            return pts[0][1]
        if n_slices >= pts[-1][0]:
            return pts[-1][1]
        for (k0, m0), (k1, m1) in zip(pts, pts[1:]):
            if k0 <= n_slices <= k1:
                if k0 == k1:
                    return m0
                w = (math.log(n_slices) - math.log(k0)) / (math.log(k1) - math.log(k0))
                return m0 + w * (m1 - m0)
        return pts[-1][1]

    def l2_misses_at(self, n_slices: int) -> float:
        """Measured curve, extended by the declared cache appetite.

        Below the calibration footprint the measured probe curve is
        interpolated (log-linear in slice count).  Beyond it, the short
        calibration cannot observe steady-state residency, so misses
        decay linearly in capacity toward ``(1 - beta)`` of the
        saturated level as the allocation approaches the process's
        declared appetite.
        """
        measured = self._interpolate_curve(n_slices)
        cap = n_slices * self.slice_bytes
        sat = max(self.probe_footprint_bytes, self.slice_bytes)
        appetite = max(self.appetite_bytes, sat)
        if cap <= sat or appetite <= sat or self.capacity_beta <= 0.0:
            return measured
        frac = min(1.0, (cap - sat) / (appetite - sat))
        return measured * (1.0 - self.capacity_beta * frac)


class PerfModel:
    """Closed-form per-interaction time estimates."""

    def __init__(self, config: SystemConfig):
        self.config = config

    def process_time(
        self,
        calib: ProcessCalibration,
        n_cores: int,
        n_slices: int,
        n_mcs: int,
    ) -> float:
        """Estimated per-interaction cycles for one process."""
        if n_cores < 1 or n_slices < 1 or n_mcs < 1:
            return math.inf
        misses = calib.l2_misses_at(n_slices)
        base = calib.instr_cycles + calib.l2_hit_cycles + misses * calib.dram_penalty
        _, factor = calib.scalability.best_factor(n_cores)
        t = base * factor
        # MC queueing (M/D/1): misses spread over t across n_mcs controllers.
        service = self.config.mem.mc_service_latency
        if t > 0 and misses > 0:
            u = min(0.95, misses * service / (t * n_mcs))
            wait = service * u / (2.0 * (1.0 - u))
            t += wait * misses / max(1, n_mcs)
        return t

    def app_completion(
        self,
        secure: ProcessCalibration,
        insecure: ProcessCalibration,
        n_secure_cores: int,
        n_secure_slices: int,
        n_secure_mcs: int,
        n_insecure_cores: int,
        n_insecure_slices: int,
        n_insecure_mcs: int,
    ) -> float:
        """Per-interaction ping-pong latency for the interactive pair."""
        t_sec = self.process_time(secure, n_secure_cores, n_secure_slices, n_secure_mcs)
        t_ins = self.process_time(insecure, n_insecure_cores, n_insecure_slices, n_insecure_mcs)
        return t_sec + t_ins
