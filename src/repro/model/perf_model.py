"""Analytic completion-time model used by the cluster-size search.

The secure kernel cannot run full simulations to pick a core binding; it
uses this closed-form model instead, fed by a short calibration of each
process (§III-B4's "heuristic for cluster reconfiguration").  For a
process allocated ``n_cores`` whose cluster carries ``n_slices`` L2
slices and ``n_mcs`` controllers, the per-interaction time is

    T = (instr_cycles + l2_hit_cycles + misses(n_slices) * dram_penalty)
        * best_factor(n_cores)  +  MC queueing

``misses(n_slices)`` comes from a measured capacity curve: the process's
calibration trace replayed against scratch hierarchies with different
slice counts, log-interpolated in between.  The same expressions drive
the machine timing model, so the predictor optimizes the quantity the
simulator will actually report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.arch.address import VirtualMemory
from repro.arch.hierarchy import MemoryHierarchy, ProcessContext
from repro.config import SystemConfig
from repro.model.speedup import ScalabilityProfile
from repro.sim.trace import Trace


def calibrate_l2_curve(
    config: SystemConfig,
    warm_trace: Trace,
    measure_trace: Trace,
    slice_counts: Sequence[int],
):
    """Probe steady-state L2 behaviour at several slice allocations.

    Each probe warms a scratch hierarchy (restricted to ``k`` slices)
    with one window of interactions and measures a *different* window.
    Measuring fresh interactions is essential: replaying the identical
    trace would make single-pass workloads (triangle counting, streaming
    servers) look fully cache-reusable and mislead the predictor into
    hoarding slices for them.  Returns ``{k: TraceResult}``.
    """
    results = {}
    for k in slice_counts:
        hier = MemoryHierarchy(config)
        vm = VirtualMemory("probe", hier.address_space, list(range(config.mem.n_regions)))
        ctx = ProcessContext(
            "probe",
            "insecure",
            vm,
            cores=[0],
            slices=list(range(k)),
            controllers=list(range(config.mem.n_controllers)),
            homing="local",
            enforce=False,
        )
        hier.run_trace(ctx, warm_trace.addrs, warm_trace.writes)
        results[k] = hier.run_trace(ctx, measure_trace.addrs, measure_trace.writes)
    return results


def calibration_from_probes(
    config: SystemConfig,
    name: str,
    trace: Trace,
    probes,
    scalability: ScalabilityProfile,
    interactions: int,
    appetite_bytes: int = 0,
    capacity_beta: float = 0.0,
) -> "ProcessCalibration":
    """Build a :class:`ProcessCalibration` from slice-capacity probes.

    ``probes`` is the output of :func:`calibrate_l2_curve`; ``trace``
    covers ``interactions`` interactions, so counters are normalized to
    per-interaction values.
    """
    k_max = max(probes)
    res = probes[k_max]
    avg_hops = (config.mesh_rows + config.mesh_cols) // 2
    hop = config.noc.hop_latency + config.noc.router_latency
    dram_penalty = config.mem.dram_latency + config.mem.mc_service_latency + 2 * avg_hops * hop
    denom = max(1, interactions)
    l2_hit_cycles = max(0.0, res.mem_cycles - res.l2_misses * dram_penalty) / denom
    return ProcessCalibration(
        name=name,
        instr_cycles=trace.instructions * config.core.base_cpi / denom,
        l1_misses=res.l1_misses / denom,
        l2_hit_cycles=l2_hit_cycles,
        dram_penalty=dram_penalty,
        l2_curve={k: r.l2_misses / denom for k, r in probes.items()},
        scalability=scalability,
        slice_bytes=config.l2_slice.size_bytes,
        probe_footprint_bytes=trace.footprint_bytes(config.line_bytes),
        appetite_bytes=appetite_bytes,
        capacity_beta=capacity_beta,
    )


@dataclass
class ProcessCalibration:
    """Per-interaction characteristics of one process."""

    name: str
    instr_cycles: float
    l1_misses: float
    l2_hit_cycles: float
    dram_penalty: float
    l2_curve: Dict[int, float]
    scalability: ScalabilityProfile
    slice_bytes: int = 64 * 1024
    probe_footprint_bytes: int = 0
    appetite_bytes: int = 0
    capacity_beta: float = 0.0

    def _interpolate_curve(self, n_slices: int) -> float:
        pts = sorted(self.l2_curve.items())
        if not pts:
            return 0.0
        if n_slices <= pts[0][0]:
            return pts[0][1]
        if n_slices >= pts[-1][0]:
            return pts[-1][1]
        for (k0, m0), (k1, m1) in zip(pts, pts[1:]):
            if k0 <= n_slices <= k1:
                if k0 == k1:
                    return m0
                w = (math.log(n_slices) - math.log(k0)) / (math.log(k1) - math.log(k0))
                return m0 + w * (m1 - m0)
        return pts[-1][1]

    def l2_misses_at(self, n_slices: int) -> float:
        """Measured curve, extended by the declared cache appetite.

        Below the calibration footprint the measured probe curve is
        interpolated (log-linear in slice count).  Beyond it, the short
        calibration cannot observe steady-state residency, so misses
        decay linearly in capacity toward ``(1 - beta)`` of the
        saturated level as the allocation approaches the process's
        declared appetite.
        """
        measured = self._interpolate_curve(n_slices)
        cap = n_slices * self.slice_bytes
        sat = max(self.probe_footprint_bytes, self.slice_bytes)
        appetite = max(self.appetite_bytes, sat)
        if cap <= sat or appetite <= sat or self.capacity_beta <= 0.0:
            return measured
        frac = min(1.0, (cap - sat) / (appetite - sat))
        return measured * (1.0 - self.capacity_beta * frac)


class PerfModel:
    """Closed-form per-interaction time estimates."""

    def __init__(self, config: SystemConfig):
        self.config = config

    def process_time(
        self,
        calib: ProcessCalibration,
        n_cores: int,
        n_slices: int,
        n_mcs: int,
    ) -> float:
        """Estimated per-interaction cycles for one process."""
        if n_cores < 1 or n_slices < 1 or n_mcs < 1:
            return math.inf
        misses = calib.l2_misses_at(n_slices)
        base = calib.instr_cycles + calib.l2_hit_cycles + misses * calib.dram_penalty
        _, factor = calib.scalability.best_factor(n_cores)
        t = base * factor
        # MC queueing (M/D/1): misses spread over t across n_mcs controllers.
        service = self.config.mem.mc_service_latency
        if t > 0 and misses > 0:
            u = min(0.95, misses * service / (t * n_mcs))
            wait = service * u / (2.0 * (1.0 - u))
            t += wait * misses / max(1, n_mcs)
        return t

    def app_completion(
        self,
        secure: ProcessCalibration,
        insecure: ProcessCalibration,
        n_secure_cores: int,
        n_secure_slices: int,
        n_secure_mcs: int,
        n_insecure_cores: int,
        n_insecure_slices: int,
        n_insecure_mcs: int,
    ) -> float:
        """Per-interaction ping-pong latency for the interactive pair."""
        t_sec = self.process_time(secure, n_secure_cores, n_secure_slices, n_secure_mcs)
        t_ins = self.process_time(insecure, n_insecure_cores, n_insecure_slices, n_insecure_mcs)
        return t_sec + t_ins
