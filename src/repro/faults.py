"""Deterministic fault injection for the sweep/store stack.

The scale-out layer (:mod:`repro.experiments.sweep`,
:mod:`repro.experiments.store`) must keep producing bit-identical
results when workers crash, units raise, reads hit corrupt files or the
disk fills up.  Proving that needs *reproducible* failures: this module
is a chaos facility whose every injection decision derives from
``ExperimentSettings.seed`` through the same
:class:`numpy.random.SeedSequence` idiom the attack harnesses use
(:mod:`repro.attacks.seeding`) — no wall clocks, no OS entropy — so a
faulted run can be replayed injection-for-injection.

**Injection sites.**  Code under test consults :func:`should_inject`
with one of the registered :data:`INJECTION_SITES` names (the
``faults.*`` static-analysis rules keep the two in sync):

* ``worker_crash`` — a pool worker hard-exits (``os._exit``) at chunk
  start, simulating an OOM-kill or segfault;
* ``unit_exception`` — :func:`~repro.experiments.sweep.execute_unit`
  raises :class:`~repro.errors.InjectedFault` instead of running;
* ``store_read_corrupt`` — the store corrupts the on-disk entry right
  before reading it, exercising checksum verification + quarantine;
* ``store_write_enospc`` — a store write-through fails with a synthetic
  ``ENOSPC``, exercising memory-only degradation;
* ``store_write_partial`` — a store write dies mid-``put`` (truncated
  temp file, no rename), exercising crash-consistent atomic publishes;
* ``unit_stall`` — a unit sleeps ``stall_s`` before executing,
  exercising per-unit timeouts.

**Plans.**  A :class:`FaultPlan` is a frozen, picklable bundle of
:class:`FaultRule`\\ s parsed from a spec string
(``site[:RATE[xCOUNT]]`` comma-separated, e.g.
``"worker_crash:1x2,store_read_corrupt:0.5"``); it ships to pool
workers inside ``ExperimentSettings.faults`` and is activated
per-process with :func:`install`.  Nothing injects unless a plan is
installed — production runs pay one dict lookup per site consult.

**Budgets.**  A rule's ``xCOUNT`` cap bounds total firings.  With a
``token_dir`` configured the budget is *global across processes*
(claimed via ``O_CREAT | O_EXCL`` token files, so "exactly one ENOSPC
per run" means one across the whole worker pool); without one it is
per-:func:`install`.

:class:`SweepHealth` rides along here (not in the sweep module) so
``ExperimentSettings`` can hold one without an import cycle.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

#: Every registered injection-site name.  The ``faults.unknown-site`` /
#: ``faults.dead-site`` static rules enforce that consults and this
#: registry stay in sync in both directions.
INJECTION_SITES = (
    "worker_crash",
    "unit_exception",
    "store_read_corrupt",
    "store_write_enospc",
    "store_write_partial",
    "unit_stall",
)


def scope_word(part) -> int:
    """One stable 64-bit word per scope component.

    Strings are digested directly; everything else folds in via its
    canonical ``repr`` (``hash()`` is process-salted and would break
    cross-process reproducibility).  Mirrors
    :func:`repro.attacks.seeding._scope_word`, duplicated here so the
    fault layer never imports the attack harnesses.
    """
    data = part if isinstance(part, str) else repr(part)
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class FaultRule:
    """One site's injection policy: fire with ``rate``, at most ``count`` times.

    ``rate`` is the per-consult firing probability (1.0 = every
    consult); ``count`` caps total firings (``None`` = unbounded).
    """

    site: str
    rate: float = 1.0
    count: Optional[int] = None

    def __post_init__(self):
        if self.site not in INJECTION_SITES:
            raise ValueError(
                f"unknown injection site {self.site!r}; "
                f"registered: {list(INJECTION_SITES)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.count is not None and self.count < 1:
            raise ValueError(f"fault count must be >= 1, got {self.count}")

    def describe(self) -> str:
        """The rule back in spec-grammar form (``site[:RATE[xCOUNT]]``)."""
        out = self.site
        if self.rate != 1.0 or self.count is not None:
            out += f":{self.rate:g}"
        if self.count is not None:
            out += f"x{self.count}"
        return out


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, picklable set of fault rules plus their seed material.

    ``seed`` feeds every injection decision; ``stall_s`` is the
    ``unit_stall`` sleep; ``token_dir`` (a shared directory) makes
    ``xCOUNT`` budgets global across processes instead of
    per-:func:`install`.
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0
    stall_s: float = 0.05
    token_dir: Optional[str] = None

    @classmethod
    def parse(
        cls,
        spec: str,
        seed: int = 0,
        stall_s: float = 0.05,
        token_dir: Optional[os.PathLike] = None,
    ) -> "FaultPlan":
        """Build a plan from a ``--faults`` spec string.

        Grammar: comma-separated ``site[:RATE[xCOUNT]]`` terms —
        ``"worker_crash"`` (always fire), ``"unit_exception:0.25"``
        (fire on a quarter of consults), ``"store_write_enospc:1x1"``
        (fire exactly once).  Raises ``ValueError`` on unknown sites,
        malformed numbers or duplicate sites.
        """
        rules = []
        seen = set()
        for term in spec.split(","):
            term = term.strip()
            if not term:
                continue
            site, _, tail = term.partition(":")
            site = site.strip()
            rate, count = 1.0, None
            if tail:
                rate_text, _, count_text = tail.partition("x")
                try:
                    rate = float(rate_text)
                    if count_text:
                        count = int(count_text)
                except ValueError:
                    raise ValueError(
                        f"malformed fault term {term!r}; expected "
                        "site[:RATE[xCOUNT]]"
                    ) from None
            if site in seen:
                raise ValueError(f"duplicate fault site {site!r} in {spec!r}")
            seen.add(site)
            rules.append(FaultRule(site, rate=rate, count=count))
        if not rules:
            raise ValueError(f"fault spec {spec!r} names no sites")
        return cls(
            rules=tuple(rules),
            seed=seed,
            stall_s=stall_s,
            token_dir=str(token_dir) if token_dir is not None else None,
        )

    def rule_for(self, site: str) -> Optional[FaultRule]:
        """The rule registered for ``site`` (``None`` = never inject)."""
        for rule in self.rules:
            if rule.site == site:
                return rule
        return None

    def describe(self) -> str:
        """The whole plan back in spec-grammar form."""
        return ",".join(rule.describe() for rule in self.rules)


# Per-process injection state.  ``install()`` resets the bookkeeping so
# a fresh pool worker (or a re-armed parent) makes decisions that
# depend only on (plan seed, site, consult index, scope) — never on
# state inherited across ``fork``.
_ACTIVE: Dict[str, Optional[FaultPlan]] = {"plan": None}
_CONSULTS: Dict[str, int] = {}
_FIRED: Dict[str, int] = {}


def install(plan: Optional[FaultPlan]) -> None:
    """Arm ``plan`` for this process (``None`` disarms).

    Resets the per-process consult counters and local firing budgets,
    so decisions are a pure function of the plan and the consult
    sequence that follows.
    """
    # Deterministic per-process injection bookkeeping: reset on every
    # install, content derives only from the seeded plan.
    _ACTIVE["plan"] = plan  # repro: allow[mp.global-write]
    _CONSULTS.clear()  # repro: allow[mp.global-write]
    _FIRED.clear()  # repro: allow[mp.global-write]


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan for this process (``None`` = disarmed)."""
    return _ACTIVE["plan"]


def _claim_budget(plan: FaultPlan, site: str, count: int) -> bool:
    """Claim one of ``site``'s ``count`` firing tokens (True = claimed).

    With ``plan.token_dir`` the claim is an ``O_CREAT | O_EXCL`` token
    file, atomic across every process sharing the directory; without
    one (or when the directory is unusable) the budget falls back to a
    per-:func:`install` counter.
    """
    if plan.token_dir:
        tdir = Path(plan.token_dir)
        usable = True
        try:
            tdir.mkdir(parents=True, exist_ok=True)
        except OSError:
            usable = False
        if usable:
            for k in range(count):
                token = tdir / f"{site}.{k}.tok"
                try:
                    fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    continue
                except OSError:
                    usable = False
                    break
                os.close(fd)
                return True
            if usable:
                return False  # every token already claimed
    fired = _FIRED.get(site, 0)
    if fired >= count:
        return False
    # Deterministic per-process injection bookkeeping (see install()).
    _FIRED[site] = fired + 1  # repro: allow[mp.global-write]
    return True


def should_inject(site: str, *scope) -> bool:
    """Consult the armed plan: inject at ``site`` for ``scope`` now?

    Every consult advances a per-process, per-site counter; the firing
    decision derives a fresh generator from ``SeedSequence(seed,
    (site, index, *scope))``, so identical consult sequences replay
    identically while retries of the same scope still get fresh
    decisions.  Returns ``False`` immediately when no plan is armed or
    the plan has no rule for ``site``.
    """
    if site not in INJECTION_SITES:
        raise ValueError(
            f"unknown injection site {site!r}; "
            f"registered: {list(INJECTION_SITES)}"
        )
    plan = _ACTIVE["plan"]
    if plan is None:
        return False
    rule = plan.rule_for(site)
    if rule is None:
        return False
    index = _CONSULTS.get(site, 0)
    # Deterministic per-process injection bookkeeping (see install()).
    _CONSULTS[site] = index + 1  # repro: allow[mp.global-write]
    if rule.rate <= 0.0:
        return False
    if rule.rate < 1.0:
        sequence = np.random.SeedSequence(
            entropy=int(plan.seed) & ((1 << 64) - 1),
            spawn_key=(scope_word(site), index)
            + tuple(scope_word(part) for part in scope),
        )
        rng = np.random.default_rng(sequence)
        if rng.random() >= rule.rate:
            return False
    if rule.count is not None:
        return _claim_budget(plan, site, rule.count)
    return True


@dataclass
class SweepHealth:
    """Fault-tolerance accounting for one sweep (merged like StoreStats).

    ``attempts`` counts unit executions handed to the pool (including
    retries); ``retries`` counts units re-queued after a failed round;
    ``worker_crashes`` / ``timeouts`` / ``unit_failures`` classify the
    round failures; ``recovered`` counts units rescued from the shared
    store after a failed chunk (writer-wins); ``degraded`` counts units
    that fell back to in-process serial execution; ``exhausted`` counts
    units whose pool attempt budget ran out.
    """

    attempts: int = 0
    retries: int = 0
    worker_crashes: int = 0
    timeouts: int = 0
    unit_failures: int = 0
    recovered: int = 0
    degraded: int = 0
    exhausted: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (reporting, cross-process merges)."""
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "timeouts": self.timeouts,
            "unit_failures": self.unit_failures,
            "recovered": self.recovered,
            "degraded": self.degraded,
            "exhausted": self.exhausted,
        }

    def merge(self, other: Dict[str, int]) -> None:
        """Fold another sweep's counters in (parent-side accumulation)."""
        for name, value in other.items():
            setattr(self, name, getattr(self, name) + value)

    def describe(self) -> str:
        """One-line summary for heartbeat/CLI reporting."""
        return (
            f"{self.attempts} attempts, {self.retries} retries, "
            f"{self.worker_crashes} crashes, {self.timeouts} timeouts, "
            f"{self.recovered} recovered, {self.degraded} degraded"
        )
