"""Exception hierarchy for the IRONHIDE reproduction.

``ReproError`` is the base for configuration and usage errors.
``IsolationViolation`` and its subclasses are *security* errors: they are
raised when a simulated component detects an access that strong isolation
forbids.  The attack harnesses rely on catching them to demonstrate that
the isolating architectures block the corresponding channels.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A system or workload configuration is inconsistent."""


class AllocationError(ReproError):
    """Physical page or resource allocation failed."""


class IsolationViolation(ReproError):
    """An access crossed a strong-isolation boundary."""


class CacheIsolationViolation(IsolationViolation):
    """A process touched a shared-cache slice it does not own."""


class MemoryIsolationViolation(IsolationViolation):
    """A process touched a DRAM region or controller it does not own."""


class NetworkIsolationViolation(IsolationViolation):
    """A NoC packet left its cluster without IPC authorization."""


class SpeculativeAccessBlocked(IsolationViolation):
    """The speculative-state hardware check discarded an access."""


class AnalysisError(ReproError, ValueError):
    """Invalid input to a leakage estimator (misaligned or malformed).

    Subclasses ``ValueError`` too, so callers that predate the typed
    hierarchy (and tests asserting ``ValueError``) keep working.
    """


class AttestationError(ReproError):
    """The secure kernel rejected a process's measurement or signature."""


class IPCError(ReproError):
    """Misuse of the shared IPC buffer (overflow, wrong domain, ...)."""
