"""Exception hierarchy for the IRONHIDE reproduction.

``ReproError`` is the base for configuration and usage errors.
``IsolationViolation`` and its subclasses are *security* errors: they are
raised when a simulated component detects an access that strong isolation
forbids.  The attack harnesses rely on catching them to demonstrate that
the isolating architectures block the corresponding channels.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A system or workload configuration is inconsistent."""


class AllocationError(ReproError):
    """Physical page or resource allocation failed."""


class IsolationViolation(ReproError):
    """An access crossed a strong-isolation boundary."""


class CacheIsolationViolation(IsolationViolation):
    """A process touched a shared-cache slice it does not own."""


class MemoryIsolationViolation(IsolationViolation):
    """A process touched a DRAM region or controller it does not own."""


class NetworkIsolationViolation(IsolationViolation):
    """A NoC packet left its cluster without IPC authorization."""


class SpeculativeAccessBlocked(IsolationViolation):
    """The speculative-state hardware check discarded an access."""


class AnalysisError(ReproError, ValueError):
    """Invalid input to a leakage estimator (misaligned or malformed).

    Subclasses ``ValueError`` too, so callers that predate the typed
    hierarchy (and tests asserting ``ValueError``) keep working.
    """


class AttestationError(ReproError):
    """The secure kernel rejected a process's measurement or signature."""


class InjectedFault(ReproError):
    """A deterministic fault-injection site fired (chaos testing only).

    Raised by code consulting :func:`repro.faults.should_inject`; never
    seen in production runs because no :class:`~repro.faults.FaultPlan`
    is installed unless ``--faults`` was given.
    """


class SweepExecutionError(ReproError):
    """A sweep could not complete every work unit despite retries.

    Carries the per-unit failure ledger (``failures``: unit -> list of
    attempt failure descriptions) and the final
    :class:`~repro.faults.SweepHealth` snapshot so callers and tests can
    inspect exactly what was retried, recovered and exhausted.
    """

    def __init__(self, message, failures=None, health=None):
        super().__init__(message)
        self.failures = dict(failures) if failures else {}
        self.health = health


class IPCError(ReproError):
    """Misuse of the shared IPC buffer (overflow, wrong domain, ...)."""
