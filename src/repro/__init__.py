"""repro — a reproduction of IRONHIDE (Omar & Khan, HPCA 2020).

A simulator of a Tile-Gx72-like 64-core multicore with the paper's four
machine models (insecure, SGX-like, multicore MI6, IRONHIDE), the nine
interactive benchmark applications, microarchitecture-state attack
harnesses, and experiment drivers regenerating the paper's figures.

Quickstart::

    from repro import SystemConfig, build_machine, get_app

    machine = build_machine("ironhide", SystemConfig.evaluation())
    result = machine.run(get_app("<AES, QUERY>"))
    print(result.completion_ms, result.secure_cores)
"""

from repro.config import SystemConfig
from repro.errors import (
    AttestationError,
    CacheIsolationViolation,
    ConfigError,
    IsolationViolation,
    MemoryIsolationViolation,
    NetworkIsolationViolation,
    ReproError,
    SpeculativeAccessBlocked,
)
from repro.machines import MACHINES, build_machine
from repro.sim.stats import Breakdown, RunResult
from repro.workloads import APPS, OS_APPS, USER_APPS, get_app

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "build_machine",
    "MACHINES",
    "Breakdown",
    "RunResult",
    "APPS",
    "OS_APPS",
    "USER_APPS",
    "get_app",
    "ReproError",
    "ConfigError",
    "IsolationViolation",
    "CacheIsolationViolation",
    "MemoryIsolationViolation",
    "NetworkIsolationViolation",
    "SpeculativeAccessBlocked",
    "AttestationError",
    "__version__",
]
