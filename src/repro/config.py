"""System configuration for the simulated Tile-Gx72-like multicore.

The paper prototypes IRONHIDE on a Tilera Tile-Gx72.  The experiments use
64 cores split into two clusters of 32 (initially), four memory
controllers (MC0..MC3) and per-tile 256 KB L2 slices that together form
the distributed shared cache.  ``SystemConfig.tile_gx72()`` captures those
parameters; every component takes its numbers from here so that tests and
ablations can build smaller machines cheaply.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.units import KB, MB, cycles_from_us


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one set-associative cache."""

    size_bytes: int
    associativity: int
    line_bytes: int = 64
    hit_latency: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible by "
                f"{self.associativity} ways of {self.line_bytes}B lines"
            )
        if self.n_sets & (self.n_sets - 1):
            raise ConfigError(f"number of sets {self.n_sets} must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class TlbConfig:
    """A fully-associative, LRU-replaced TLB."""

    entries: int = 32
    hit_latency: int = 0
    miss_walk_latency: int = 50


@dataclass(frozen=True)
class NocConfig:
    """2-D mesh network parameters."""

    hop_latency: int = 1
    router_latency: int = 1
    link_width_bytes: int = 8

    def traversal_latency(self, hops: int) -> int:
        """One-way latency of a packet crossing ``hops`` links."""
        return hops * (self.hop_latency + self.router_latency)


@dataclass(frozen=True)
class MemConfig:
    """Memory controllers and DRAM."""

    n_controllers: int = 4
    n_regions: int = 8
    region_bytes: int = 512 * MB
    dram_latency: int = 90
    mc_service_latency: int = 18
    queue_depth: int = 64
    writeback_drain_latency: int = 30


@dataclass(frozen=True)
class CostConfig:
    """Fixed costs of the security protocols (paper's measured constants).

    ``sgx_crossing_us`` is HotCalls' measured per-ECALL/OCALL overhead the
    paper injects (5 us per entry and per exit).  ``attestation_us`` is a
    one-time secure-kernel admission cost.  ``reconfig_page_us`` is the
    per-page unmap/re-home/remap cost of dynamic hardware isolation; the
    paper measures the whole one-time reconfiguration at ~15 ms.
    """

    sgx_crossing_us: float = 5.0
    attestation_us: float = 100.0
    reconfig_stall_us: float = 50.0
    reconfig_page_us: float = 2.5
    pipeline_flush_cycles: int = 200
    tlb_flush_cycles: int = 500
    # The flush-and-invalidate dummy-buffer read: per-line reload cost
    # (an L2 round trip with limited memory-level parallelism) and the
    # buffer size in lines.  The buffer matches the real 32 KB L1
    # (512 lines); it is a protocol cost, so capacity-scaled evaluation
    # configs keep the full-size value, like the 5 us SGX crossings.
    dummy_read_line_cycles: int = 28
    dummy_buffer_lines: int = 512

    @property
    def sgx_crossing_cycles(self) -> int:
        return cycles_from_us(self.sgx_crossing_us)


@dataclass(frozen=True)
class CoreConfig:
    """Simple in-order core timing: cycles per instruction when not
    stalled on memory, and how the workload's sync overhead scales."""

    base_cpi: float = 0.8


#: Valid values for :attr:`SystemConfig.replay_engine`.
REPLAY_ENGINES = ("scalar", "vector")


@dataclass(frozen=True)
class SystemConfig:
    """Complete machine description.

    ``replay_engine`` selects the trace-replay implementation used by
    :class:`repro.arch.hierarchy.MemoryHierarchy`: ``"scalar"`` is the
    original per-event reference loop, ``"vector"`` the batched engine
    (see ``repro.arch.vector_cache``).  Both produce identical counters;
    the scalar path is kept as the oracle for the equivalence suite.
    """

    mesh_rows: int = 8
    mesh_cols: int = 8
    page_bytes: int = 4096
    replay_engine: str = "scalar"
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(32 * KB, 8, hit_latency=2))
    l2_slice: CacheConfig = field(default_factory=lambda: CacheConfig(256 * KB, 8, hit_latency=11))
    tlb: TlbConfig = field(default_factory=TlbConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    mem: MemConfig = field(default_factory=MemConfig)
    costs: CostConfig = field(default_factory=CostConfig)
    core: CoreConfig = field(default_factory=CoreConfig)

    def __post_init__(self) -> None:
        if self.replay_engine not in REPLAY_ENGINES:
            raise ConfigError(
                f"unknown replay engine {self.replay_engine!r}; "
                f"expected one of {REPLAY_ENGINES}"
            )
        if self.mesh_rows < 2 or self.mesh_cols < 2:
            raise ConfigError("mesh must be at least 2x2")
        if self.mem.n_regions % self.mem.n_controllers:
            raise ConfigError("DRAM regions must divide evenly across controllers")
        if self.page_bytes % self.l1.line_bytes:
            raise ConfigError("page size must be a multiple of the line size")

    @property
    def n_cores(self) -> int:
        return self.mesh_rows * self.mesh_cols

    @property
    def line_bytes(self) -> int:
        return self.l1.line_bytes

    @property
    def regions_per_controller(self) -> int:
        return self.mem.n_regions // self.mem.n_controllers

    def with_engine(self, engine: str) -> "SystemConfig":
        """A copy of this configuration using the given replay engine."""
        return replace(self, replay_engine=engine)

    def config_hash(self) -> str:
        """Stable content digest of every machine parameter.

        The experiment result store keys cached runs by this value, so
        any change to the machine description — geometry, latencies,
        protocol costs, replay engine — invalidates previously stored
        results.  The digest is derived from the dataclass ``repr``,
        which covers all nested configs field by field.
        """
        return hashlib.sha1(repr(self).encode()).hexdigest()

    @classmethod
    def tile_gx72(cls) -> "SystemConfig":
        """The configuration used throughout the paper's evaluation."""
        return cls()

    @classmethod
    def evaluation(cls) -> "SystemConfig":
        """The capacity-scaled machine used by the experiment harness.

        The workload traces are scaled-down representatives of the real
        applications (see ``AppSpec.time_scale``), so cache capacities
        scale with them: a 16 KB L1 and 64 KB L2 slices keep the ratio
        of working set to capacity — which is what the paper's locality
        and partitioning effects depend on — in the same regime as the
        full-size Tile-Gx72.  All latencies and protocol costs remain
        the full-size values.
        """
        return cls(
            l1=CacheConfig(16 * KB, 8, hit_latency=2),
            l2_slice=CacheConfig(64 * KB, 8, hit_latency=11),
        )

    @classmethod
    def small(cls, rows: int = 4, cols: int = 4) -> "SystemConfig":
        """A small machine for fast unit tests."""
        return cls(
            mesh_rows=rows,
            mesh_cols=cols,
            l1=CacheConfig(4 * KB, 4, hit_latency=2),
            l2_slice=CacheConfig(16 * KB, 4, hit_latency=11),
            mem=MemConfig(n_controllers=2, n_regions=4, region_bytes=64 * MB),
        )
