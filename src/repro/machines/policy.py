"""Purge policies: when and what a machine flushes at boundaries.

Historically the machine layer carried one bit of purge semantics —
``crossing_state_hazard`` — which conflated three separate questions:

* **Schedule** — *when* does microarchitectural state get flushed?
  Never (insecure, SGX, IRONHIDE inside a stable configuration), at
  every secure-boundary crossing (MI6, SIMF), or on a periodic fence
  every N interactions (fence.t.s-style temporal partitioning).
* **Flush set** — *what* is wiped?  Core-local state (private L1s,
  TLBs, branch predictor), the dirty shared-L2 footprint, the memory
  controller queues.
* **Mechanism** — the software flush sequence the paper models for MI6
  (dummy-buffer read, Tilera TLB commands) or an ISA-supported
  single-instruction bulk flush whose fixed cost collapses into the
  pipeline drain (SIMF's ``simf`` instruction, fence.t.s's ``fence.t``).

:class:`PurgePolicy` answers all three.  The machines declare one as a
class attribute; :class:`~repro.machines.base.Machine` consults it in
both replay engines — the scalar per-interaction loop executes the
flush at the matching boundary, and the batched pipeline places an
epoch barrier at every flushing boundary so the flush acts on (and
wipes) live cache state.  The policy's :meth:`PurgePolicy.signature`
rides in the sweep store key, so changing a machine's default policy
can never serve stale cached results.

The named policies at the bottom are the points of the policy space the
registered machines occupy; MI6's is exactly the pre-policy behaviour
(per-crossing software purge of everything), bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

#: Valid ``PurgePolicy.schedule`` values.
SCHEDULES = ("never", "crossing", "interval")

#: Boundary points within one interaction, in execution order:
#: ``begin`` precedes the producer's trace, ``entry`` sits at the
#: secure-domain entry (after the producer's IPC send), ``exit`` at the
#: secure-domain exit (after the consumer's IPC reply send).
BOUNDARY_POINTS = ("begin", "entry", "exit")


@dataclass(frozen=True)
class PurgePolicy:
    """One machine's flush schedule, flush set and flush mechanism.

    ``interval`` means "flush every N-th opportunity": for the
    ``crossing`` schedule the opportunities are the entry/exit
    crossings themselves (MI6 and SIMF use 1 — every crossing), for the
    ``interval`` schedule they are interaction starts (the fence.t.s
    fence period).  ``flush_predictor`` has no cycle cost in the
    performance model (predictor state carries no replay timing) but
    drives the attack model: a policy that flushes predictor state at
    domain boundaries discards cross-domain branch mistraining.
    ``software_sequence`` selects the MI6-style software purge costs
    (dummy-buffer read, TLB flush commands) over an ISA-supported flush
    whose fixed cost is just the pipeline drain.
    """

    schedule: str = "never"
    interval: int = 1
    flush_private: bool = False
    flush_predictor: bool = False
    flush_l2_dirty: bool = False
    drain_controllers: bool = False
    software_sequence: bool = True

    def __post_init__(self):
        if self.schedule not in SCHEDULES:
            raise ValueError(
                f"unknown purge schedule {self.schedule!r}; "
                f"choose from {SCHEDULES}"
            )
        if not (isinstance(self.interval, int) and self.interval >= 1):
            raise ValueError(f"interval must be an int >= 1, got {self.interval!r}")
        if self.drain_controllers and not self.flush_l2_dirty:
            raise ValueError("drain_controllers requires flush_l2_dirty")
        if self.schedule == "never" and (
            self.flush_private
            or self.flush_predictor
            or self.flush_l2_dirty
            or self.drain_controllers
        ):
            raise ValueError("a 'never' schedule cannot carry flush flags")

    # ------------------------------------------------------------------
    # Constructors for the named points of the policy space
    # ------------------------------------------------------------------
    @classmethod
    def never(cls) -> "PurgePolicy":
        """No flushing at any boundary (insecure, SGX, IRONHIDE)."""
        return cls()

    @classmethod
    def every_crossing(
        cls,
        interval: int = 1,
        flush_private: bool = True,
        flush_predictor: bool = True,
        flush_l2_dirty: bool = True,
        drain_controllers: bool = True,
        software_sequence: bool = True,
    ) -> "PurgePolicy":
        """Flush at every ``interval``-th secure entry/exit crossing."""
        return cls(
            schedule="crossing",
            interval=interval,
            flush_private=flush_private,
            flush_predictor=flush_predictor,
            flush_l2_dirty=flush_l2_dirty,
            drain_controllers=drain_controllers,
            software_sequence=software_sequence,
        )

    @classmethod
    def every_interval(
        cls,
        interval: int,
        flush_private: bool = True,
        flush_predictor: bool = True,
        flush_l2_dirty: bool = False,
        drain_controllers: bool = False,
        software_sequence: bool = False,
    ) -> "PurgePolicy":
        """Periodic fence at the start of every ``interval``-th interaction."""
        return cls(
            schedule="interval",
            interval=interval,
            flush_private=flush_private,
            flush_predictor=flush_predictor,
            flush_l2_dirty=flush_l2_dirty,
            drain_controllers=drain_controllers,
            software_sequence=software_sequence,
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    @property
    def stateful(self) -> bool:
        """True when a flush can mutate simulated cache/TLB state.

        Stateful policies are epoch barriers for the batched replay
        pipeline; stateless ones replay a whole run as one epoch.
        """
        return self.schedule != "never" and (
            self.flush_private or self.flush_l2_dirty
        )

    def flushes(self, index: int, point: str) -> bool:
        """Does interaction ``index`` (0-based) flush at ``point``?

        Warm-up interactions count toward the schedule exactly like
        measured ones — both replay engines walk the same index range,
        so the flush placement (and therefore the cache state) cannot
        depend on the engine.
        """
        if point not in BOUNDARY_POINTS:
            raise ValueError(
                f"unknown boundary point {point!r}; choose from {BOUNDARY_POINTS}"
            )
        if self.schedule == "crossing":
            if point == "entry":
                return (2 * index) % self.interval == 0
            if point == "exit":
                return (2 * index + 1) % self.interval == 0
            return False
        if self.schedule == "interval":
            return point == "begin" and index % self.interval == 0
        return False

    def flush_points(self, count: int) -> Iterator[Tuple[int, str]]:
        """Every flushing ``(index, point)`` over ``count`` interactions,
        in execution order."""
        for index in range(count):
            for point in BOUNDARY_POINTS:
                if self.flushes(index, point):
                    yield (index, point)

    def signature(self) -> str:
        """Stable, human-readable store-key component.

        Folds every result-affecting policy knob into a short string so
        the sweep scheduler's unit keys (and therefore the persistent
        result store) fork whenever a machine's policy changes.
        """
        flags = "".join(
            token
            for token, on in (
                ("P", self.flush_private),
                ("B", self.flush_predictor),
                ("2", self.flush_l2_dirty),
                ("M", self.drain_controllers),
            )
            if on
        )
        mechanism = "sw" if self.software_sequence else "hw"
        return f"{self.schedule}/{self.interval}/{flags or '-'}/{mechanism}"


#: Default fence period (interactions per fence) of the fence.t.s
#: machine; override per run with ``build_machine(..., fence_interval=N)``.
DEFAULT_FENCE_INTERVAL = 4

#: The policy points the registered machines occupy.
NEVER = PurgePolicy.never()
#: MI6: full software purge (dummy read + TLB + fence + MC drain) at
#: every crossing — exactly the pre-policy hard-coded behaviour.
MI6_PURGE = PurgePolicy.every_crossing()
#: SIMF: the same per-crossing flush set, issued as one ISA instruction
#: — the O(occupancy) drains remain, the fixed software costs vanish.
SIMF_FLUSH = PurgePolicy.every_crossing(software_sequence=False)
#: fence.t.s: periodic ISA fence wiping core-local state only; the
#: shared L2 and the controllers are untouched.
FENCE_TS = PurgePolicy.every_interval(DEFAULT_FENCE_INTERVAL)
