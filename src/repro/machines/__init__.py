"""The evaluated machine models.

* :class:`InsecureMachine` — no security primitives (normalization base).
* :class:`SgxMachine` — SGX-like enclaves: 5 us crossings, no
  partitioning, no purging (temporal sharing leaks state).
* :class:`Mi6Machine` — multicore MI6: static L2/DRAM partitioning plus
  full microarchitecture-state purges at every enclave crossing.
* :class:`IronhideMachine` — the paper's contribution: spatially
  isolated clusters, pinned processes, one-time dynamic reconfiguration.
"""

from repro.machines.base import Machine
from repro.machines.insecure import InsecureMachine
from repro.machines.ironhide import IronhideMachine
from repro.machines.mi6 import Mi6Machine
from repro.machines.sgx import SgxMachine

MACHINES = {
    "insecure": InsecureMachine,
    "sgx": SgxMachine,
    "mi6": Mi6Machine,
    "ironhide": IronhideMachine,
}


def build_machine(name: str, config=None, **kwargs) -> Machine:
    """Construct one of the evaluated machines by name."""
    try:
        cls = MACHINES[name]
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r}; choose from {sorted(MACHINES)}"
        ) from None
    return cls(config=config, **kwargs)


__all__ = [
    "Machine",
    "InsecureMachine",
    "SgxMachine",
    "Mi6Machine",
    "IronhideMachine",
    "MACHINES",
    "build_machine",
]
