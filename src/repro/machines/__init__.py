"""The evaluated machine models.

* :class:`InsecureMachine` — no security primitives (normalization base).
* :class:`SgxMachine` — SGX-like enclaves: 5 us crossings, no
  partitioning, no purging (temporal sharing leaks state).
* :class:`Mi6Machine` — multicore MI6: static L2/DRAM partitioning plus
  full microarchitecture-state purges at every enclave crossing.
* :class:`IronhideMachine` — the paper's contribution: spatially
  isolated clusters, pinned processes, one-time dynamic reconfiguration.
* :class:`FenceTsMachine` — fence.t.s temporal partitioning: a periodic
  ISA fence wipes core-local state every N interactions, L2 untouched.
* :class:`SimfMachine` — SIMF: MI6's full flush set as one ISA
  instruction at every crossing (no software purge-sequence cost).

``MACHINES`` is the registry every driver, test suite and doc table
derives its machine list from — the single source of truth for what
exists (the ``machines.*`` static-analysis rules enforce it both ways).
Each machine's flush behaviour lives in its
:class:`~repro.machines.policy.PurgePolicy`; :func:`machine_policy`
exposes the registered default so the sweep store keys and the attack
models can consult it without instantiating a machine.
"""

from repro.machines.base import Machine
from repro.machines.insecure import InsecureMachine
from repro.machines.ironhide import IronhideMachine
from repro.machines.mi6 import Mi6Machine
from repro.machines.policy import PurgePolicy
from repro.machines.sgx import SgxMachine
from repro.machines.temporal import FenceTsMachine, SimfMachine, TemporalMachine

MACHINES = {
    "insecure": InsecureMachine,
    "sgx": SgxMachine,
    "mi6": Mi6Machine,
    "ironhide": IronhideMachine,
    "fence_ts": FenceTsMachine,
    "simf": SimfMachine,
}


def build_machine(name: str, config=None, **kwargs) -> Machine:
    """Construct one of the evaluated machines by name."""
    try:
        cls = MACHINES[name]
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r}; choose from {sorted(MACHINES)}"
        ) from None
    return cls(config=config, **kwargs)


def machine_policy(name: str) -> PurgePolicy:
    """The registered default purge policy of machine ``name``."""
    try:
        cls = MACHINES[name]
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r}; choose from {sorted(MACHINES)}"
        ) from None
    return cls.purge_policy


__all__ = [
    "Machine",
    "InsecureMachine",
    "SgxMachine",
    "Mi6Machine",
    "IronhideMachine",
    "TemporalMachine",
    "FenceTsMachine",
    "SimfMachine",
    "PurgePolicy",
    "MACHINES",
    "build_machine",
    "machine_policy",
]
