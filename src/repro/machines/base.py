"""Shared machinery for the four evaluated machine models.

Every machine runs an interactive application the same way the paper's
prototype does: a warm-up phase, then a measured sequence of ping-pong
interactions — the insecure producer computes and posts a message to the
shared IPC buffer, the secure consumer picks it up, computes, and posts
its reply.  Machines differ only in their :meth:`Machine._setup` (how
hardware is divided, what one-time costs apply), in the entry/exit
hooks (what each secure-boundary crossing costs), and in their
:class:`~repro.machines.policy.PurgePolicy` (whether, when and what
microarchitectural state gets flushed at interaction boundaries).
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.address import VirtualMemory
from repro.arch.hierarchy import MemoryHierarchy, ProcessContext, TraceResult
from repro.config import SystemConfig
from repro.machines.policy import NEVER, PurgePolicy
from repro.secure.enclave import EnclaveManager
from repro.secure.ipc import SharedIpcBuffer
from repro.secure.kernel import SecureKernel
from repro.secure.purge import PurgeModel
from repro.secure.spectre_guard import SpectreGuard
from repro.sim.bundle import TraceBundle, interaction_bundle
from repro.sim.stats import Breakdown, ProcessStats, RunResult
from repro.sim.trace import Trace
from repro.units import cycles_from_us
from repro.workloads.base import AppSpec, WorkloadProcess


@dataclass
class CrossingCost:
    """Cycles charged at one secure-boundary crossing."""

    crossing: float = 0.0
    purge: float = 0.0


@dataclass
class Setup:
    """Everything a machine prepares before the measured run."""

    ctx_secure: ProcessContext
    ctx_insecure: ProcessContext
    ipc: SharedIpcBuffer
    breakdown: Breakdown
    secure_cores: int
    insecure_cores: int
    predictor_evals: int = 0


class Machine(abc.ABC):
    """One evaluated architecture."""

    name: str = "abstract"
    strong_isolation: bool = False
    #: When and what this machine flushes at interaction boundaries.
    #: Stateful policies (MI6's per-crossing purge, the temporal fence
    #: machines) are barriers for the batched replay pipeline: the
    #: replay splits into per-boundary epochs so each flush sees — and
    #: wipes — the live cache state.  Instances may override the class
    #: default (e.g. a non-default fence interval).
    purge_policy: PurgePolicy = NEVER

    def __init__(self, config: Optional[SystemConfig] = None, post_setup_warmup: int = 2):
        self.config = config or SystemConfig.tile_gx72()
        self.hier = MemoryHierarchy(self.config)
        self.mesh = self.hier.mesh
        self.kernel = SecureKernel()
        self.enclaves = EnclaveManager(self.config)
        self.purge_model = PurgeModel(self.config)
        self.guard = SpectreGuard(self.hier.dram, self.hier.address_space.frames_per_region)
        self.post_setup_warmup = post_setup_warmup

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _setup(
        self, app: AppSpec, sec: WorkloadProcess, ins: WorkloadProcess, rng
    ) -> Setup:
        """Divide the hardware and charge one-time costs."""

    def _secure_entry(self, app: AppSpec, st: Setup) -> CrossingCost:
        return CrossingCost()

    def _secure_exit(self, app: AppSpec, st: Setup) -> CrossingCost:
        return CrossingCost()

    def _flush_targets(self, st: Setup) -> Tuple[List[int], List[int], List[int]]:
        """``(cores, l2_slices, controllers)`` a policy flush acts on.

        By default the two representative cores plus the secure side's
        L2 slices and controllers; machines with bespoke partition plans
        (MI6) override this to match their flush domain.
        """
        return (
            [st.ctx_secure.rep_core, st.ctx_insecure.rep_core],
            list(st.ctx_secure.slices),
            list(st.ctx_secure.controllers),
        )

    def _policy_flush(self, app: AppSpec, st: Setup) -> float:
        """Execute one policy-scheduled flush; returns its cycle cost."""
        pol = self.purge_policy
        cores, slices, mcs = self._flush_targets(st)
        report = self.purge_model.flush(
            self.hier,
            cores,
            slices,
            mcs,
            dirty_scale=app.footprint_scale,
            flush_private=pol.flush_private,
            flush_l2_dirty=pol.flush_l2_dirty,
            drain_controllers=pol.drain_controllers,
            software_sequence=pol.software_sequence,
        )
        return float(report.total_cycles)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(
        self, app: AppSpec, n_interactions: Optional[int] = None, seed: int = 0
    ) -> RunResult:
        """Run the interactive application; returns the measured result.

        Interaction traces are materialized once per run as cached
        :class:`~repro.sim.bundle.TraceBundle`\\ s.  Under the scalar
        replay engine (the reference oracle) the interactions replay
        one at a time; under the vector engine the whole run replays
        through the interaction-batched pipeline.  Both paths consume
        identical bundle bytes and return bit-identical results
        (``REPRO_NO_BATCH=1`` forces the per-interaction loop on the
        vector engine for debugging).
        """
        n = n_interactions if n_interactions is not None else app.n_interactions
        rng = np.random.default_rng(seed)
        sec_proc, ins_proc = app.processes()
        self._run_seed = seed
        st = self._setup(app, sec_proc, ins_proc, rng)
        bd = st.breakdown
        sec_stats = ProcessStats(sec_proc.name, cores=st.secure_cores)
        ins_stats = ProcessStats(ins_proc.name, cores=st.insecure_cores)
        start = -self.post_setup_warmup
        count = n - start
        b_sec = interaction_bundle(app, "secure", sec_proc, seed, start, count)
        b_ins = interaction_bundle(app, "insecure", ins_proc, seed, start, count)
        if self.config.replay_engine == "vector" and not os.environ.get(
            "REPRO_NO_BATCH"
        ):
            self._run_batched(
                app, st, sec_proc, ins_proc, b_sec, b_ins, start, n,
                bd, sec_stats, ins_stats,
            )
        else:
            for k, i in enumerate(range(start, n)):
                self._interaction(
                    app, st, sec_proc, ins_proc,
                    b_sec.segment(k), b_ins.segment(k),
                    i >= 0, bd, sec_stats, ins_stats,
                    index=k,
                )
        # One-time costs (attestation, the single reconfiguration event)
        # amortize over the application's full-scale run; the measured
        # window covers n of real_interactions of it.
        amortization = min(1.0, n / app.real_interactions)
        bd.attestation *= amortization
        bd.reconfig *= amortization
        return RunResult(
            machine=self.name,
            app=app.name,
            interactions=n,
            breakdown=bd,
            secure=sec_stats,
            insecure=ins_stats,
            secure_cores=st.secure_cores,
            insecure_cores=st.insecure_cores,
            predictor_evals=st.predictor_evals,
        )

    def _warmup_bundles(
        self,
        app: AppSpec,
        sec_proc: WorkloadProcess,
        ins_proc: WorkloadProcess,
        start: int,
        count: int,
    ) -> Tuple[TraceBundle, TraceBundle]:
        """Bundles for an extra (setup-time) warm-up index range."""
        seed = getattr(self, "_run_seed", 0)
        return (
            interaction_bundle(app, "secure", sec_proc, seed, start, count),
            interaction_bundle(app, "insecure", ins_proc, seed, start, count),
        )

    def _interaction(
        self,
        app: AppSpec,
        st: Setup,
        sec_proc: WorkloadProcess,
        ins_proc: WorkloadProcess,
        tr_sec: Trace,
        tr_ins: Trace,
        counted: bool,
        bd: Breakdown,
        sec_stats: ProcessStats,
        ins_stats: ProcessStats,
        index: int = 0,
    ) -> None:
        ts = app.time_scale
        pol = self.purge_policy

        # Periodic fence (interval schedules): flush before the
        # producer touches the caches.
        fence = 0.0
        if pol.flushes(index, "begin"):
            fence = self._policy_flush(app, st)

        # Insecure producer computes and posts the input message.
        res_ins = self.hier.run_trace(st.ctx_insecure, tr_ins.addrs, tr_ins.writes)
        t_ins = self._process_time(res_ins, tr_ins, ins_proc, len(st.ctx_insecure.cores))
        ipc_cycles = st.ipc.send(st.ctx_insecure, app.ipc_bytes)

        entry = self._secure_entry(app, st)
        if pol.flushes(index, "entry"):
            entry.purge += self._policy_flush(app, st)

        # Secure consumer picks the message up, computes, posts the reply.
        ipc_cycles += st.ipc.recv(st.ctx_secure, app.ipc_bytes)
        res_sec = self.hier.run_trace(st.ctx_secure, tr_sec.addrs, tr_sec.writes)
        t_sec = self._process_time(res_sec, tr_sec, sec_proc, len(st.ctx_secure.cores))
        ipc_cycles += st.ipc.send(st.ctx_secure, app.ipc_reply_bytes)

        exit_ = self._secure_exit(app, st)
        if pol.flushes(index, "exit"):
            exit_.purge += self._policy_flush(app, st)

        ipc_cycles += st.ipc.recv(st.ctx_insecure, app.ipc_reply_bytes)

        if counted:
            bd.compute += (t_ins + t_sec) * ts
            bd.ipc += ipc_cycles
            bd.crossing += entry.crossing + exit_.crossing
            bd.purge += fence + entry.purge + exit_.purge
            self._accumulate(ins_stats, res_ins, t_ins * ts)
            self._accumulate(sec_stats, res_sec, t_sec * ts)

    def _run_batched(
        self,
        app: AppSpec,
        st: Setup,
        sec_proc: WorkloadProcess,
        ins_proc: WorkloadProcess,
        b_sec: TraceBundle,
        b_ins: TraceBundle,
        start: int,
        n: int,
        bd: Breakdown,
        sec_stats: ProcessStats,
        ins_stats: ProcessStats,
    ) -> None:
        """Replay every interaction through the batched pipeline.

        Builds one schedule covering the whole measured run — each
        interaction contributes six segments (producer trace, IPC send,
        IPC recv, consumer trace, IPC reply send, IPC reply recv) — and
        replays it through :class:`~repro.arch.batch_replay.
        BatchReplayer`.  Machines with a stateful purge policy (MI6's
        per-crossing purge, the temporal fence machines) replay
        per-boundary epochs with the flushes in between, exactly where
        the per-interaction loop fires them; for the others one epoch
        covers the entire run and the (state-neutral) crossing hooks
        are charged in the accounting pass.
        """
        from repro.arch.batch_replay import BatchReplayer, Segment

        ipc = st.ipc
        count = n - start
        segments: List[Segment] = []
        ops = []
        for k in range(count):
            tr_ins = b_ins.segment(k)
            tr_sec = b_sec.segment(k)
            send_ins = ipc.plan_send(st.ctx_insecure, app.ipc_bytes)
            recv_sec = ipc.plan_recv(st.ctx_secure, app.ipc_bytes)
            send_sec = ipc.plan_send(st.ctx_secure, app.ipc_reply_bytes)
            recv_ins = ipc.plan_recv(st.ctx_insecure, app.ipc_reply_bytes)
            segments.extend(
                [
                    Segment(st.ctx_insecure, tr_ins.addrs, tr_ins.writes),
                    Segment(send_ins.ctx, send_ins.addrs, send_ins.writes),
                    Segment(recv_sec.ctx, recv_sec.addrs, recv_sec.writes),
                    Segment(st.ctx_secure, tr_sec.addrs, tr_sec.writes),
                    Segment(send_sec.ctx, send_sec.addrs, send_sec.writes),
                    Segment(recv_ins.ctx, recv_ins.addrs, recv_ins.writes),
                ]
            )
            ops.append((tr_ins, tr_sec, send_ins, recv_sec, send_sec, recv_ins))

        replayer = BatchReplayer(self.hier, segments)
        pol = self.purge_policy
        entries: Optional[List[CrossingCost]] = None
        exits: Optional[List[CrossingCost]] = None
        fences: Optional[List[float]] = None
        if pol.stateful:
            # Stateful flushes: replay pauses at each flushing boundary
            # so the flush acts on (and wipes) the live microarchitec-
            # tural state.  Each epoch covers exactly the segments
            # between two flush barriers — for MI6's every-crossing
            # schedule interaction k's trailing reply-recv segment
            # merges with interaction k+1's producer trace and IPC send
            # (one planned epoch per crossing: 2 per interaction, not
            # 3), for a fence interval of N whole interactions merge
            # into one epoch — bit-identical either way because epoch
            # splits never change per-segment results.
            results: List[TraceResult] = []
            entries = []
            exits = []
            fences = []
            cursor = 0

            def advance(to: int) -> None:
                nonlocal cursor
                if to > cursor:
                    results.extend(replayer.run_epoch(cursor, to))
                    cursor = to

            for k in range(count):
                base = 6 * k
                fence = 0.0
                if pol.flushes(k, "begin"):
                    advance(base)
                    fence = self._policy_flush(app, st)
                fences.append(fence)
                if pol.flushes(k, "entry"):
                    advance(base + 2)
                entry = self._secure_entry(app, st)
                if pol.flushes(k, "entry"):
                    entry.purge += self._policy_flush(app, st)
                entries.append(entry)
                if pol.flushes(k, "exit"):
                    advance(base + 5)
                exit_ = self._secure_exit(app, st)
                if pol.flushes(k, "exit"):
                    exit_.purge += self._policy_flush(app, st)
                exits.append(exit_)
            advance(len(segments))
        else:
            results = replayer.run_epoch(0, len(segments))

        ts = app.time_scale
        n_ins = len(st.ctx_insecure.cores)
        n_sec = len(st.ctx_secure.cores)
        for k, i in enumerate(range(start, n)):
            tr_ins, tr_sec, send_ins, recv_sec, send_sec, recv_ins = ops[k]
            base = 6 * k
            res_ins = results[base]
            res_sec = results[base + 3]
            t_ins = self._process_time(res_ins, tr_ins, ins_proc, n_ins)
            ipc_cycles = ipc.finish(send_ins, results[base + 1].mem_cycles)
            entry = entries[k] if entries is not None else self._secure_entry(app, st)
            ipc_cycles += ipc.finish(recv_sec, results[base + 2].mem_cycles)
            t_sec = self._process_time(res_sec, tr_sec, sec_proc, n_sec)
            ipc_cycles += ipc.finish(send_sec, results[base + 4].mem_cycles)
            exit_ = exits[k] if exits is not None else self._secure_exit(app, st)
            ipc_cycles += ipc.finish(recv_ins, results[base + 5].mem_cycles)
            if i >= 0:
                fence = fences[k] if fences is not None else 0.0
                bd.compute += (t_ins + t_sec) * ts
                bd.ipc += ipc_cycles
                bd.crossing += entry.crossing + exit_.crossing
                bd.purge += fence + entry.purge + exit_.purge
                self._accumulate(ins_stats, res_ins, t_ins * ts)
                self._accumulate(sec_stats, res_sec, t_sec * ts)

    def _process_time(
        self,
        res: TraceResult,
        trace: Trace,
        proc: WorkloadProcess,
        n_alloc: int,
    ) -> float:
        """Per-interaction cycles for one process (representative-core
        time, parallel scaling, MC queueing)."""
        cpi = self.config.core.base_cpi
        t_rep = trace.instructions * cpi + res.mem_cycles
        n_used, factor = proc.profile.scalability.best_factor(max(1, n_alloc))
        t = t_rep * factor
        service = self.config.mem.mc_service_latency
        if t > 0:
            extra = 0.0
            for mc, reqs in res.mc_requests.items():
                if reqs:
                    extra += self.hier.controllers[mc].queue_delay(reqs, t) * reqs
            t += extra / max(1, n_used)
        return t

    @staticmethod
    def _accumulate(stats: ProcessStats, res: TraceResult, cycles: float) -> None:
        stats.accesses += res.accesses
        stats.l1_misses += res.l1_misses
        stats.l2_accesses += res.l2_accesses
        stats.l2_misses += res.l2_misses
        stats.tlb_misses += res.tlb_misses
        stats.compute_cycles += cycles

    # ------------------------------------------------------------------
    # Shared setup helpers
    # ------------------------------------------------------------------
    def _make_context(
        self,
        name: str,
        domain: str,
        cores,
        slices,
        controllers,
        regions,
        homing: str,
        rep_core: int = -1,
        replication: bool = False,
        numa_mc: bool = False,
    ) -> ProcessContext:
        vm = VirtualMemory(name, self.hier.address_space, list(regions))
        return ProcessContext(
            name=name,
            domain=domain,
            vm=vm,
            cores=list(cores),
            slices=list(slices),
            controllers=list(controllers),
            homing=homing,
            rep_core=rep_core,
            replication=replication,
            numa_mc=numa_mc,
        )

    def _attest(self, sec_proc: WorkloadProcess, bd: Breakdown) -> None:
        """Enroll + admit the secure process (one-time cost)."""
        image = sec_proc.profile.code_image or sec_proc.name.encode()
        self.kernel.enroll(sec_proc.name, image)
        self.kernel.admit(sec_proc.name, image)
        bd.attestation += cycles_from_us(self.config.costs.attestation_us)
