"""The SGX-like machine (§IV-A1).

Each enclave entry (ECALL) and exit (OCALL) flushes the core pipeline
and pays the memory-encryption/integrity cost — a constant 5 us, the
upper end of HotCalls' measurement, exactly as the paper injects it.
Nothing is partitioned and nothing is purged: private caches, shared L2
slices, TLBs and DRAM remain temporally shared, so the secure process's
microarchitectural footprint stays exposed (the attack harnesses
demonstrate the resulting leakage).
"""

from __future__ import annotations

from repro.machines.base import CrossingCost, Machine, Setup
from repro.secure.ipc import SharedIpcBuffer
from repro.secure.isolation import UnifiedPolicy
from repro.sim.stats import Breakdown
from repro.workloads.base import AppSpec, WorkloadProcess


class SgxMachine(Machine):
    name = "sgx"
    strong_isolation = False

    def _setup(self, app: AppSpec, sec: WorkloadProcess, ins: WorkloadProcess, rng) -> Setup:
        plan = UnifiedPolicy().plan(self.config, self.mesh, self.hier.dram)
        ctx_sec = self._make_context(
            sec.name, "secure", plan.secure_cores, plan.secure_slices,
            plan.secure_mcs, plan.secure_regions, plan.homing, rep_core=0,
            replication=True, numa_mc=True,
        )
        ctx_ins = self._make_context(
            ins.name, "insecure", plan.insecure_cores, plan.insecure_slices,
            plan.insecure_mcs, plan.insecure_regions, plan.homing, rep_core=1,
            replication=True, numa_mc=True,
        )
        bd = Breakdown()
        self._attest(sec, bd)
        self.enclaves.create(sec.name)
        ipc = SharedIpcBuffer(self.hier, ctx_ins, plan.shared_region)
        return Setup(
            ctx_secure=ctx_sec,
            ctx_insecure=ctx_ins,
            ipc=ipc,
            breakdown=bd,
            secure_cores=len(plan.secure_cores),
            insecure_cores=len(plan.insecure_cores),
        )

    def _secure_entry(self, app: AppSpec, st: Setup) -> CrossingCost:
        return CrossingCost(crossing=self.enclaves.enter(st.ctx_secure.name))

    def _secure_exit(self, app: AppSpec, st: Setup) -> CrossingCost:
        return CrossingCost(crossing=self.enclaves.exit(st.ctx_secure.name))
