"""The multicore MI6 baseline (§IV-A2).

Strong isolation on top of the SGX-like machine:

* L2 slices and DRAM regions are statically split in half between the
  secure and insecure process (local homing, replication disabled);
* every enclave entry **and** exit purges the time-shared private state:
  L1s are flush-and-invalidated by reading a dummy buffer, TLBs are
  flushed, a fence propagates dirty private data, and all memory
  controller queues are purged — writing modified data back to DRAM;
* each crossing still pays the SGX 5 us pipeline-flush/crypto cost.

The purge cost is computed from the simulated dirty state, which is what
reproduces the paper's ~0.19 ms/interaction for data-heavy user
applications and the far cheaper purges of tiny OS interactions.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.machines.base import CrossingCost, Machine, Setup
from repro.machines.policy import MI6_PURGE
from repro.secure.ipc import SharedIpcBuffer
from repro.secure.isolation import StaticPartitionPolicy
from repro.sim.stats import Breakdown
from repro.workloads.base import AppSpec, WorkloadProcess


class Mi6Machine(Machine):
    name = "mi6"
    strong_isolation = True
    # Full software purge at every crossing: the policy is stateful, so
    # the batched replay pipeline splits into per-crossing epochs.
    purge_policy = MI6_PURGE

    def _setup(self, app: AppSpec, sec: WorkloadProcess, ins: WorkloadProcess, rng) -> Setup:
        plan = StaticPartitionPolicy().plan(self.config, self.mesh, self.hier.dram)
        self._plan = plan
        ctx_sec = self._make_context(
            sec.name, "secure", plan.secure_cores, plan.secure_slices,
            plan.secure_mcs, plan.secure_regions, plan.homing, rep_core=0, numa_mc=True,
        )
        ctx_ins = self._make_context(
            ins.name, "insecure", plan.insecure_cores, plan.insecure_slices,
            plan.insecure_mcs, plan.insecure_regions,
            plan.homing, rep_core=1, numa_mc=True,
        )
        bd = Breakdown()
        self._attest(sec, bd)
        self.enclaves.create(sec.name)
        ipc = SharedIpcBuffer(self.hier, ctx_ins, plan.shared_region)
        return Setup(
            ctx_secure=ctx_sec,
            ctx_insecure=ctx_ins,
            ipc=ipc,
            breakdown=bd,
            secure_cores=len(plan.secure_cores),
            insecure_cores=len(plan.insecure_cores),
        )

    def _flush_targets(self, st: Setup) -> Tuple[List[int], List[int], List[int]]:
        """Purge everything time-shared: both representative cores, both
        halves of the statically-split L2, the secure controllers."""
        plan = self._plan
        return (
            [st.ctx_secure.rep_core, st.ctx_insecure.rep_core],
            plan.secure_slices + plan.insecure_slices,
            plan.secure_mcs,
        )

    def _secure_entry(self, app: AppSpec, st: Setup) -> CrossingCost:
        return CrossingCost(crossing=self.enclaves.enter(st.ctx_secure.name))

    def _secure_exit(self, app: AppSpec, st: Setup) -> CrossingCost:
        return CrossingCost(crossing=self.enclaves.exit(st.ctx_secure.name))
