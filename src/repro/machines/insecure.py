"""The insecure baseline: no security primitives at all.

Both processes time-share every core, the L2 is hash-homed across all
slices, all controllers serve everyone, and boundary crossings are free.
This is the normalization base of the paper's Figure 1(a).
"""

from __future__ import annotations

from repro.machines.base import Machine, Setup
from repro.secure.ipc import SharedIpcBuffer
from repro.secure.isolation import UnifiedPolicy
from repro.sim.stats import Breakdown
from repro.workloads.base import AppSpec, WorkloadProcess


class InsecureMachine(Machine):
    name = "insecure"
    strong_isolation = False

    def _setup(self, app: AppSpec, sec: WorkloadProcess, ins: WorkloadProcess, rng) -> Setup:
        plan = UnifiedPolicy().plan(self.config, self.mesh, self.hier.dram)
        ctx_sec = self._make_context(
            sec.name, "secure", plan.secure_cores, plan.secure_slices,
            plan.secure_mcs, plan.secure_regions, plan.homing, rep_core=0,
            replication=True, numa_mc=True,
        )
        ctx_ins = self._make_context(
            ins.name, "insecure", plan.insecure_cores, plan.insecure_slices,
            plan.insecure_mcs, plan.insecure_regions, plan.homing, rep_core=1,
            replication=True, numa_mc=True,
        )
        ipc = SharedIpcBuffer(self.hier, ctx_ins, plan.shared_region)
        return Setup(
            ctx_secure=ctx_sec,
            ctx_insecure=ctx_ins,
            ipc=ipc,
            breakdown=Breakdown(),
            secure_cores=len(plan.secure_cores),
            insecure_cores=len(plan.insecure_cores),
        )
