"""The IRONHIDE machine (§III-B).

Two spatially isolated clusters of cores: the attested secure process is
pinned to the secure cluster, the insecure process to the other.  Each
cluster owns its cores' private L1s/TLBs, its cores' L2 slices (local
homing), and dedicated memory controllers with their DRAM regions; the
NoC confines each cluster's traffic.  Interactions flow through the
shared IPC buffer without any enclave entry/exit, so no per-interaction
purging ever happens.

Dynamic hardware isolation: the run starts at the balanced 32/32
configuration, the secure kernel calibrates both processes, the core
re-allocation predictor picks a single load-balanced binding, and one
reconfiguration event (stall + flush of re-allocated cores + page
re-homing; ~15 ms full-scale) moves the machine there.  Reconfiguration
is bounded to once per application invocation to cap the scheduling
side channel.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.arch.hierarchy import TraceResult
from repro.machines.base import Machine, Setup
from repro.model.perf_model import (
    PerfModel,
    ProcessCalibration,
    calibrate_l2_curve,
    calibration_from_probes,
)
from repro.secure.ipc import SharedIpcBuffer
from repro.secure.isolation import SpatialClusterPolicy
from repro.secure.predictor import GradientHeuristicPredictor, PredictorResult
from repro.secure.purge import PurgeModel
from repro.secure.reconfig import ReconfigEngine
from repro.sim.stats import Breakdown, ProcessStats
from repro.workloads.base import AppSpec, WorkloadProcess

_CALIBRATION_SEED = 0xC411B


class IronhideMachine(Machine):
    name = "ironhide"
    strong_isolation = True

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        predictor=None,
        initial_split: Optional[int] = None,
        calibration_cache: Optional[Dict] = None,
        initial_warmup: int = 2,
        post_setup_warmup: int = 2,
        probe_store=None,
        probe_store_read: bool = True,
    ):
        super().__init__(config, post_setup_warmup=post_setup_warmup)
        self.predictor = predictor or GradientHeuristicPredictor()
        self.perf_model = PerfModel(self.config)
        self.initial_split = initial_split
        self.initial_warmup = initial_warmup
        self.calibration_cache = calibration_cache if calibration_cache is not None else {}
        # Optional ResultStore memoizing the calibration probe curves
        # (keyed by app, process, config hash and probe grid); the
        # experiment runner wires the settings' store in so probe
        # replays are shared across figures, processes and invocations.
        # ``probe_store_read=False`` mirrors the store's no-cache
        # semantics: bypass reads, still record fresh curves.
        self.probe_store = probe_store
        self.probe_store_read = probe_store_read
        self.reconfig_report = None
        self.predictor_result: Optional[PredictorResult] = None

    # ------------------------------------------------------------------
    def _setup(self, app: AppSpec, sec: WorkloadProcess, ins: WorkloadProcess, rng) -> Setup:
        bd = Breakdown()
        self._attest(sec, bd)

        n = self.config.n_cores
        init_n = self.initial_split if self.initial_split is not None else n // 2
        plan = SpatialClusterPolicy(init_n).plan(self.config, self.mesh, self.hier.dram)
        ctx_sec = self._make_context(
            sec.name, "secure", plan.secure_cores, plan.secure_slices,
            plan.secure_mcs, plan.secure_regions, plan.homing,
        )
        ctx_ins = self._make_context(
            ins.name, "insecure", plan.insecure_cores, plan.insecure_slices,
            plan.insecure_mcs, plan.insecure_regions, plan.homing,
        )
        ipc = SharedIpcBuffer(self.hier, ctx_ins, plan.shared_region)
        st = Setup(
            ctx_secure=ctx_sec,
            ctx_insecure=ctx_ins,
            ipc=ipc,
            breakdown=bd,
            secure_cores=init_n,
            insecure_cores=n - init_n,
        )

        # Warm up at the initial binding (paper: processes start 32/32).
        throwaway_sec = ProcessStats()
        throwaway_ins = ProcessStats()
        if self.initial_warmup:
            wb_sec, wb_ins = self._warmup_bundles(
                app, sec, ins, -10_000, self.initial_warmup
            )
            for k in range(self.initial_warmup):
                self._interaction(
                    app, st, sec, ins, wb_sec.segment(k), wb_ins.segment(k),
                    False, bd, throwaway_sec, throwaway_ins,
                )

        # Calibrate, predict, reconfigure once.
        calib_sec, calib_ins = self._calibrations(app, sec, ins)
        candidates = SpatialClusterPolicy.valid_splits(self.config, self.mesh)
        result = self.predictor.choose(
            self._make_evaluator(calib_sec, calib_ins), candidates
        )
        self.predictor_result = result
        st.predictor_evals = result.evaluations
        n_sec = result.n_secure
        if n_sec != init_n:
            self._apply_binding(app, st, n_sec)
        st.secure_cores = n_sec
        st.insecure_cores = n - n_sec
        return st

    def _apply_binding(self, app: AppSpec, st: Setup, n_sec: int) -> None:
        """One dynamic-hardware-isolation event to the chosen binding."""
        new_plan = SpatialClusterPolicy(n_sec).plan(self.config, self.mesh, self.hier.dram)
        old_secure = set(st.ctx_secure.cores)
        reallocated = old_secure.symmetric_difference(new_plan.secure_cores)

        ctx_sec, ctx_ins = st.ctx_secure, st.ctx_insecure
        ctx_sec.cores = list(new_plan.secure_cores)
        ctx_sec.slices = list(new_plan.secure_slices)
        ctx_sec.controllers = list(new_plan.secure_mcs)
        ctx_sec.vm.set_regions(new_plan.secure_regions)
        ctx_ins.cores = list(new_plan.insecure_cores)
        ctx_ins.slices = list(new_plan.insecure_slices)
        ctx_ins.controllers = list(new_plan.insecure_mcs)
        ctx_ins.vm.set_regions(new_plan.insecure_regions)

        engine = ReconfigEngine(self.config, max_events=1)
        report = engine.reconfigure(
            self.hier, [ctx_sec, ctx_ins], reallocated, page_scale=app.page_scale
        )
        st.ipc.rehome(ctx_ins)
        self.reconfig_report = report
        st.breakdown.reconfig += report.total_cycles

    # ------------------------------------------------------------------
    def _make_evaluator(self, calib_sec: ProcessCalibration, calib_ins: ProcessCalibration):
        n = self.config.n_cores

        def evaluate(n_sec: int) -> float:
            sec_mcs, ins_mcs = SpatialClusterPolicy.mc_counts(self.mesh, n, n_sec)
            if not sec_mcs or not ins_mcs:
                return float("inf")
            return self.perf_model.app_completion(
                calib_sec, calib_ins,
                n_secure_cores=n_sec, n_secure_slices=n_sec, n_secure_mcs=sec_mcs,
                n_insecure_cores=n - n_sec, n_insecure_slices=n - n_sec,
                n_insecure_mcs=ins_mcs,
            )

        return evaluate

    def _calibrations(
        self, app: AppSpec, sec: WorkloadProcess, ins: WorkloadProcess
    ) -> Tuple[ProcessCalibration, ProcessCalibration]:
        # The probes depend on the whole machine description (cache
        # geometry, latencies, mesh shape), so key on all of it: a
        # calibration carried over from a look-alike config would poison
        # the runner's memoized results.
        key = (app.name, repr(self.config))
        cached = self.calibration_cache.get(key)
        if cached is not None:
            return cached
        n = self.config.n_cores
        counts = sorted(
            {c for c in (1, 2, 4, 8, 16, 24, 32, 48, n - 2) if 1 <= c <= n - 1}
        )
        calibs = []
        for proc in (sec, ins):
            crng = np.random.default_rng(_CALIBRATION_SEED)
            interactions = 2
            warm = proc.calibration_trace(crng, interactions, start=0)
            measure = proc.calibration_trace(crng, interactions, start=interactions)
            probes = self._probe_curve(app, proc, warm, measure, counts, interactions)
            calibs.append(
                calibration_from_probes(
                    self.config, proc.name, measure, probes,
                    proc.profile.scalability, interactions,
                    appetite_bytes=proc.profile.l2_appetite_bytes,
                    capacity_beta=proc.profile.capacity_beta,
                )
            )
        pair = (calibs[0], calibs[1])
        self.calibration_cache[key] = pair
        return pair

    def _probe_curve(self, app, proc, warm, measure, counts, interactions):
        """The probe curve for one process, memoized in the result store.

        The store key pins everything the probe replays depend on: the
        app/process identity, the calibration seed and window, the probe
        grid, and the full machine description via
        :meth:`SystemConfig.config_hash` (which includes the replay
        engine, so the engines' bit-identical curves stay keyed apart —
        same policy as the run store).  Values are
        :meth:`~repro.arch.hierarchy.TraceResult.as_payload` dicts,
        which round-trip bit-exactly through JSON.
        """
        store = self.probe_store
        key = (
            "ironhide_probe_curve",
            app.name,
            proc.name,
            self.config.config_hash(),
            tuple(counts),
            interactions,
            _CALIBRATION_SEED,
        )
        if store is not None and self.probe_store_read:
            hit = store.get(key, copy_result=False)
            if hit is not None:
                return {
                    int(k): TraceResult.from_payload(v) for k, v in hit.items()
                }
        probes = calibrate_l2_curve(self.config, warm, measure, counts)
        if store is not None:
            store.put(
                key, {str(k): r.as_payload() for k, r in probes.items()}
            )
        return probes

    # ------------------------------------------------------------------
    def context_switch_secure(self, app: AppSpec, st: Setup) -> float:
        """Context switch between mutually distrusting secure processes.

        Secure processes of *different* applications time-multiplex the
        secure cluster; the per-core resources and the secure cluster's
        controller queues are purged (§III-B1/B2).  Returns cycles.
        """
        report = self.purge_model.purge(
            self.hier,
            cores=st.ctx_secure.cores,
            l2_slices=st.ctx_secure.slices,
            controllers=st.ctx_secure.controllers,
            dirty_scale=app.footprint_scale,
        )
        return float(report.total_cycles)
