"""Temporal-partitioning machines: fence.t.s and SIMF.

IRONHIDE's headline comparison is against designs that share hardware
in time and flush microarchitectural state to sever the resulting
channels.  Two literature-backed variants of that idea slot straight
into the purge-policy space:

* **fence.t.s** (ISA-supported temporal partitioning, arxiv
  2409.07576): a periodic fence instruction wipes *core-local* state —
  private L1s, TLBs, the branch predictor — every N interactions.  The
  shared L2 and the memory controllers are untouched, so the fence
  costs only a pipeline drain plus the dirty-private writeback, and
  cache-occupancy channels through the shared L2 stay open.
* **SIMF** (single-instruction multiple-flush, arxiv 2011.10249): one
  ISA instruction performs MI6's whole flush set — core-local state
  plus the dirty shared-L2 footprint drained through the controllers —
  at every enclave crossing.  The O(occupancy) drain costs remain, but
  the fixed costs of MI6's *software* purge sequence (the dummy-buffer
  read, the TLB flush commands) collapse into the pipeline drain.

Both run on the insecure machine's unified hardware plan (no static
partitioning, no NoC containment): all isolation comes from the flush
schedule.  That is exactly the taxonomy the paper predicts — temporal
flushing severs core-local channels at fence boundaries but leaves the
NoC and shared-cache occupancy channels open (see
``docs/experiments.md``'s attack-channel table).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.config import SystemConfig
from repro.machines.base import Machine, Setup
from repro.machines.policy import FENCE_TS, SIMF_FLUSH, PurgePolicy
from repro.secure.ipc import SharedIpcBuffer
from repro.secure.isolation import UnifiedPolicy
from repro.sim.stats import Breakdown
from repro.workloads.base import AppSpec, WorkloadProcess


class TemporalMachine(Machine):
    """Shared base: unified hardware plan, flush-schedule isolation.

    ``fence_interval`` overrides the class policy's flush period (the
    fence period for fence.t.s, the crossing stride for SIMF);
    ``policy`` replaces the machine's policy wholesale, which is how
    the policy unit tests explore off-registry points of the space.
    """

    strong_isolation = False

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        post_setup_warmup: int = 2,
        fence_interval: Optional[int] = None,
        policy: Optional[PurgePolicy] = None,
    ):
        super().__init__(config=config, post_setup_warmup=post_setup_warmup)
        if policy is not None:
            self.purge_policy = policy
        if fence_interval is not None:
            self.purge_policy = replace(
                self.purge_policy, interval=int(fence_interval)
            )

    def _setup(self, app: AppSpec, sec: WorkloadProcess, ins: WorkloadProcess, rng) -> Setup:
        plan = UnifiedPolicy().plan(self.config, self.mesh, self.hier.dram)
        ctx_sec = self._make_context(
            sec.name, "secure", plan.secure_cores, plan.secure_slices,
            plan.secure_mcs, plan.secure_regions, plan.homing, rep_core=0,
            replication=True, numa_mc=True,
        )
        ctx_ins = self._make_context(
            ins.name, "insecure", plan.insecure_cores, plan.insecure_slices,
            plan.insecure_mcs, plan.insecure_regions, plan.homing, rep_core=1,
            replication=True, numa_mc=True,
        )
        bd = Breakdown()
        self._attest(sec, bd)
        ipc = SharedIpcBuffer(self.hier, ctx_ins, plan.shared_region)
        return Setup(
            ctx_secure=ctx_sec,
            ctx_insecure=ctx_ins,
            ipc=ipc,
            breakdown=bd,
            secure_cores=len(plan.secure_cores),
            insecure_cores=len(plan.insecure_cores),
        )


class FenceTsMachine(TemporalMachine):
    name = "fence_ts"
    purge_policy = FENCE_TS


class SimfMachine(TemporalMachine):
    name = "simf"
    purge_policy = SIMF_FLUSH
