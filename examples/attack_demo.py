#!/usr/bin/env python
"""Microarchitecture-state attacks vs the three isolation models.

Mounts Prime+Probe, a cache covert channel, a Spectre-style speculative
leak and a NoC timing probe against a victim under the SGX-like, MI6
and IRONHIDE models — SGX leaks, strong isolation does not.

    python examples/attack_demo.py
"""

from __future__ import annotations

from repro.attacks import (
    AttackEnvironment,
    CacheCovertChannel,
    NocTimingProbe,
    PrimeProbeAttack,
    SpectreAttack,
)
from repro.attacks.analysis import channel_capacity_estimate, mutual_information_bits


def main() -> None:
    secret_message = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1] * 4
    print(f"{'model':<10} {'prime+probe':<22} {'covert channel':<28} "
          f"{'spectre':<18} {'noc probe'}")
    print("-" * 100)
    for model in ("sgx", "mi6", "ironhide"):
        pp = PrimeProbeAttack(AttackEnvironment.build(model)).run(secret=37)
        pp_txt = (
            f"recovered {pp.recovered} ({'HIT' if pp.success else 'miss'})"
            if pp.eviction_set_built
            else "no eviction set"
        )

        cc = CacheCovertChannel(AttackEnvironment.build(model)).transmit(secret_message)
        mi = mutual_information_bits(zip(cc.sent, cc.received))
        cc_txt = (
            f"BER {cc.bit_error_rate:.2f}, "
            f"capacity {channel_capacity_estimate(cc.bit_error_rate):.2f} b/bit, "
            f"MI {mi:.2f}"
        )

        sp = SpectreAttack(AttackEnvironment.build(model)).run(secret=29)
        sp_txt = "LEAKED" if sp.leaked else (
            "guard discarded" if sp.blocked_by_guard else "no leak"
        )

        noc = NocTimingProbe(AttackEnvironment.build(model)).run()
        noc_txt = f"{noc.observed_transits} transits seen"

        print(f"{model:<10} {pp_txt:<22} {cc_txt:<28} {sp_txt:<18} {noc_txt}")

    print(
        "\nSGX-like temporal sharing leaves every channel open; MI6 and "
        "IRONHIDE sever them — IRONHIDE additionally confines NoC traffic "
        "to the cluster, without any per-interaction purging."
    )


if __name__ == "__main__":
    main()
