#!/usr/bin/env python
"""Quickstart: run one interactive application on all four machines.

Reproduces the core comparison of the paper on a single app — the
query-encryption pipeline <AES, QUERY> — and prints completion time,
its breakdown, and cache behaviour per machine.

    python examples/quickstart.py [app-name] [n_interactions]
"""

from __future__ import annotations

import sys

from repro import APPS, SystemConfig, build_machine, get_app


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "<AES, QUERY>"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 24
    app = get_app(app_name)
    config = SystemConfig.evaluation()

    print(f"Application: {app.name} — {app.description}")
    print(f"Machine: 8x8 mesh, {config.n_cores} cores, "
          f"{config.mem.n_controllers} memory controllers, {n} interactions\n")

    header = (f"{'machine':<10} {'total ms':>9} {'compute':>8} {'crossing':>9} "
              f"{'purge':>7} {'reconfig':>9} {'L1 miss':>8} {'L2 miss':>8} {'sec cores':>10}")
    print(header)
    print("-" * len(header))

    baseline = None
    for name in ("insecure", "sgx", "mi6", "ironhide"):
        machine = build_machine(name, config)
        result = machine.run(app, n_interactions=n)
        if baseline is None:
            baseline = result.completion_cycles
        bd = result.breakdown
        print(
            f"{name:<10} {result.completion_ms:>9.2f} {bd.compute / 1e6:>8.2f} "
            f"{bd.crossing / 1e6:>9.3f} {bd.purge / 1e6:>7.3f} {bd.reconfig / 1e6:>9.3f} "
            f"{100 * result.l1_miss_rate:>7.1f}% {100 * result.l2_miss_rate:>7.1f}% "
            f"{result.secure_cores:>10}"
        )
    print("\nNormalized to insecure:")
    for name in ("sgx", "mi6", "ironhide"):
        machine = build_machine(name, config)
        result = machine.run(app, n_interactions=n)
        print(f"  {name:<9} {result.completion_cycles / baseline:.3f}x")
    print("\nKnown apps:", ", ".join(a.name for a in APPS))


if __name__ == "__main__":
    main()
