#!/usr/bin/env python
"""Dynamic hardware isolation: watch the predictor pick cluster sizes.

For each application, shows the calibration-driven estimate curve over
secure-cluster sizes, the binding the gradient heuristic picks, what
Optimal would pick, and what the one reconfiguration event costs —
the machinery behind Figures 6 (markers) and 8.

    python examples/reconfiguration_tuning.py
"""

from __future__ import annotations

from repro import APPS, SystemConfig
from repro.machines.ironhide import IronhideMachine
from repro.secure.predictor import OptimalPredictor
from repro.units import ms_from_cycles


def sparkline(values, width=32) -> str:
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = max(1, len(values) // width)
    sampled = values[::step][:width]
    return "".join(blocks[int(7 * (v - lo) / span)] for v in sampled)


def main() -> None:
    config = SystemConfig.evaluation()
    cache = {}
    print(f"{'app':<20} {'estimate over n_sec':<34} {'heur':>5} {'opt':>5} "
          f"{'evals':>6} {'reconfig ms':>12}")
    print("-" * 88)
    for app in APPS:
        machine = IronhideMachine(config, calibration_cache=cache)
        sec, ins = app.processes()
        calib_sec, calib_ins = machine._calibrations(app, sec, ins)
        evaluate = machine._make_evaluator(calib_sec, calib_ins)
        candidates = list(range(1, config.n_cores))
        curve = [evaluate(n) for n in candidates]

        result = machine.run(app, n_interactions=8)
        optimal = IronhideMachine(
            config, predictor=OptimalPredictor(), calibration_cache=cache
        ).run(app, n_interactions=8)

        reconfig = (
            ms_from_cycles(machine.reconfig_report.total_cycles)
            if machine.reconfig_report
            else 0.0
        )
        print(
            f"{app.name:<20} {sparkline(curve):<34} {result.secure_cores:>5} "
            f"{optimal.secure_cores:>5} {result.predictor_evals:>6} {reconfig:>12.2f}"
        )
    print(
        "\nsparkline: estimated completion vs secure-cluster size (1..63); "
        "reconfiguration happens once per invocation (paper: ~15 ms)."
    )


if __name__ == "__main__":
    main()
