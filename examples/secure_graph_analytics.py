#!/usr/bin/env python
"""Real-time graph processing, end to end (the paper's first workload).

Runs the *real* algorithms: the insecure GRAPH process generates
temporal sensor updates for a California-like road network, and the
secure consumers recompute SSSP, PageRank and triangle counts after
each batch — then runs the matching <SSSP, GRAPH> interactive
application on MI6 and IRONHIDE to show the architecture-level cost of
securing it.

    python examples/secure_graph_analytics.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import SystemConfig, build_machine, get_app
from repro.workloads.graphs import (
    RoadNetwork,
    generate_temporal_updates,
    pagerank,
    sssp,
    triangle_count,
)


def run_real_pipeline() -> None:
    print("== Real algorithms over the road network ==")
    graph = RoadNetwork.california_like(n_nodes=1024, seed=42)
    print(f"network: {graph.n_nodes} junctions, {graph.n_edges} directed road segments")

    rng = np.random.default_rng(0)
    for batch in range(3):
        edges, weights = generate_temporal_updates(graph, rng, batch=64)
        graph.with_updated_weights(edges, weights)  # the GRAPH process's job

        t0 = time.perf_counter()
        dist = sssp(graph, source=0)
        t_sssp = time.perf_counter() - t0

        t0 = time.perf_counter()
        rank = pagerank(graph, iterations=15)
        t_pr = time.perf_counter() - t0

        reachable = np.isfinite(dist).mean()
        hub = int(np.argmax(rank))
        print(
            f"batch {batch}: updated {len(edges)} segments | "
            f"SSSP {1000 * t_sssp:.1f} ms (reachable {100 * reachable:.0f}%, "
            f"mean dist {dist[np.isfinite(dist)].mean():.1f}) | "
            f"PR {1000 * t_pr:.1f} ms (top junction {hub})"
        )
    print(f"triangles in final network: {triangle_count(graph)}")


def run_simulated_architecture() -> None:
    print("\n== The same pipeline as an interactive application ==")
    app = get_app("<SSSP, GRAPH>")
    config = SystemConfig.evaluation()
    results = {}
    for name in ("insecure", "sgx", "mi6", "ironhide"):
        results[name] = build_machine(name, config).run(app, n_interactions=24)
    base = results["insecure"].completion_cycles
    for name, r in results.items():
        marker = f" (secure cluster: {r.secure_cores} cores)" if name == "ironhide" else ""
        print(f"  {name:<9} {r.completion_cycles / base:.3f}x insecure{marker}")
    mi6, ih = results["mi6"], results["ironhide"]
    print(
        f"\nIRONHIDE over MI6: {mi6.completion_cycles / ih.completion_cycles:.2f}x "
        f"(purging {mi6.breakdown.purge / 1e6:.2f}M cycles -> "
        f"one-time {ih.breakdown.reconfig / 1e6:.2f}M amortized)"
    )


if __name__ == "__main__":
    run_real_pipeline()
    run_simulated_architecture()
