#!/usr/bin/env python
"""OS-level interactivity: where IRONHIDE wins big.

Drives the *real* mini key-value store with memtier-style requests
through the mini OS (every request costs syscalls — the ~220K
entry/exit events per second of §IV-B), then shows what those boundary
crossings cost on each architecture.

    python examples/os_interactive.py
"""

from __future__ import annotations

import numpy as np

from repro import SystemConfig, build_machine, get_app
from repro.units import ms_from_cycles
from repro.workloads.kv import MiniMemcached, memtier_request
from repro.workloads.os_proc import MiniOs
from repro.workloads.web import MiniHttpd, http_load_request


def run_real_servers() -> None:
    print("== Real MEMCACHED + OS ==")
    kv = MiniMemcached(capacity_bytes=1 << 20)
    os_ = MiniOs()
    rng = np.random.default_rng(7)
    log_fd = os_.open("/var/log/memcached.log")
    for _ in range(20_000):
        op, key = memtier_request(rng)
        if op == "set":
            kv.set(key, b"v" * 100)
        elif kv.get(key) is None:
            kv.set(key, b"v" * 100)  # read-through fill
        os_.writev(log_fd, [key, b"\n"])  # the untrusted-OS interaction
    os_.close(log_fd)
    print(
        f"requests: {kv.stats.gets + kv.stats.sets:,} | hit rate {100 * kv.stats.hit_rate:.1f}% "
        f"| evictions {kv.stats.evictions:,} | OS syscalls {os_.syscalls:,}"
    )

    print("\n== Real LIGHTTPD ==")
    httpd = MiniHttpd(page_bytes=20 * 1024, n_pages=64)
    hits = sum(
        1 for _ in range(2_000)
        if httpd.handle(http_load_request(rng, 64)).status == 200
    )
    print(f"pages fetched: {hits:,} of {httpd.requests_served:,} requests")


def run_architectures() -> None:
    print("\n== Boundary-crossing costs per architecture ==")
    config = SystemConfig.evaluation()
    for app_name in ("<MEMCACHED, OS>", "<LIGHTTPD, OS>"):
        app = get_app(app_name)
        print(f"\n{app.name}: {app.real_interactions:,} full-scale requests")
        base = None
        for name in ("insecure", "sgx", "mi6", "ironhide"):
            r = build_machine(name, config).run(app, n_interactions=160)
            if base is None:
                base = r.completion_cycles
            per_interaction_us = 1e3 * ms_from_cycles(r.completion_cycles) / r.interactions
            print(
                f"  {name:<9} {r.completion_cycles / base:>6.2f}x insecure | "
                f"{per_interaction_us:6.2f} us/request | "
                f"purge {ms_from_cycles(r.breakdown.purge):7.3f} ms, "
                f"crossings {ms_from_cycles(r.breakdown.crossing):7.3f} ms"
            )


if __name__ == "__main__":
    run_real_servers()
    run_architectures()
