#!/usr/bin/env python
"""A tour of IRONHIDE's cluster formation (the paper's Figure 3).

Draws the mesh for a given split: which tiles belong to the secure and
insecure clusters, where the memory controllers anchor, how a packet is
routed so it never crosses the boundary, and which DRAM regions each
side owns.

    python examples/cluster_tour.py [n_secure]
"""

from __future__ import annotations

import sys

from repro.arch.hierarchy import MemoryHierarchy
from repro.arch.routing import route_for_cluster
from repro.config import SystemConfig
from repro.secure.isolation import SpatialClusterPolicy


def draw(config, plan) -> None:
    mesh_rows, mesh_cols = config.mesh_rows, config.mesh_cols
    secure = set(plan.secure_cores)
    anchors = {}
    hier_mesh = MemoryHierarchy(config).mesh
    for mc in range(config.mem.n_controllers):
        anchors[hier_mesh.mc_anchor_core(mc)] = mc
    print("   " + "".join(f"{c:^4}" for c in range(mesh_cols)))
    for r in range(mesh_rows):
        row = []
        for c in range(mesh_cols):
            core = r * mesh_cols + c
            tag = "S" if core in secure else "i"
            if core in anchors:
                tag += f"M{anchors[core]}"
            row.append(f"{tag:^4}")
        print(f"{r:>2} " + "".join(row))


def main() -> None:
    n_sec = int(sys.argv[1]) if len(sys.argv) > 1 else 21
    config = SystemConfig.evaluation()
    hier = MemoryHierarchy(config)
    plan = SpatialClusterPolicy(n_sec).plan(config, hier.mesh, hier.dram)

    print(f"IRONHIDE split: {plan.n_secure} secure / {plan.n_insecure} insecure cores")
    print("S = secure tile, i = insecure tile, Mx = controller anchor\n")
    draw(config, plan)

    print(f"\nsecure   MCs {plan.secure_mcs} -> DRAM regions {plan.secure_regions}")
    print(f"insecure MCs {plan.insecure_mcs} -> DRAM regions {plan.insecure_regions}")
    print(f"shared IPC region: {plan.shared_region}")

    # Show bidirectional routing keeping a boundary-row packet contained.
    secure = frozenset(plan.secure_cores)
    src, dst = plan.secure_cores[-1], plan.secure_cores[0]
    path = route_for_cluster(hier.mesh, src, dst, secure)
    coords = [hier.mesh.coords(t) for t in path]
    print(f"\npacket {src} -> {dst} stays secure-side: {coords}")


if __name__ == "__main__":
    main()
